"""High-level database facade.

:class:`Database` ties the pieces together: a catalog of projections, a
buffer pool over the cost-accounted disk model, strategy selection (explicit
or model-driven), execution, and result decoding. This is the public entry
point both the examples and the benchmark harness use.

Example::

    db = Database("/tmp/demo")
    load_tpch(db.catalog, scale=0.01)
    result = db.query(
        SelectQuery(
            projection="lineitem",
            select=("shipdate", "linenum"),
            predicates=(
                Predicate("shipdate", "<", 9000),
                Predicate("linenum", "<", 7),
            ),
        ),
        strategy="lm-parallel",
    )
    print(result.rows()[:5], result.wall_ms, result.simulated_ms)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from .buffer import BufferPool, DecodedBlockCache, DiskModel
from .buffer.decoded import DEFAULT_DECODED_CAPACITY_BYTES
from .cancel import CancelToken
import numpy as np

from .delta import (
    DeltaStore,
    delta_aggregate,
    delta_select,
    expand_avg,
    internal_query,
    merge_aggregates,
    multiset_keep_mask,
)
from .errors import CatalogError, ExecutionError, PlanError
from .faults import FaultInjector, PartitionQuarantine, RetryPolicy
from .metrics import REGISTRY, MetricsRegistry, QueryStats
from .model.constants import PAPER_CONSTANTS, ModelConstants
from .model.cost import simulated_time_ms
from .observe import Span, SpanTracer
from .operators import ExecutionContext, TupleSet
from .planner import (
    JoinQuery,
    RightTableStrategy,
    SelectQuery,
    Strategy,
    choose_strategy,
    execute_join,
    execute_select,
    resolve_projection,
)
from .planner.projection_choice import resolve_join_side
from .storage.catalog import Catalog
from .storage.projection import Projection


@dataclass
class QueryResult:
    """A finished query: tuples, the strategy used, and its costs."""

    tuples: TupleSet
    strategy: str
    stats: QueryStats
    wall_ms: float
    simulated_ms: float
    decoders: dict = field(default_factory=dict)
    #: Root of the EXPLAIN ANALYZE span tree when the query ran with
    #: ``trace=True``; None otherwise.
    spans: Span | None = None
    #: True when the query completed over a strict subset of its partitions
    #: (``Database(on_error="degrade")`` skipped quarantined or failing
    #: partitions). A degraded result is the clean result restricted to the
    #: surviving partitions — never silently wrong, always flagged.
    degraded: bool = False
    #: Names of the partitions skipped by degraded execution, in partition
    #: order; empty for a complete result.
    skipped_partitions: tuple = ()
    #: Rows in the scanned projection before predicates — the denominator
    #: the query log's observed selectivity is computed against. 0 when
    #: unknown (joins).
    base_rows: int = 0
    #: Name of the projection the planner resolved the query to (selects
    #: only; None for joins). The query log records it so replay can pin
    #: each query to the projection that produced its result hash even
    #: after the advisor has changed the candidate set.
    projection: str | None = None

    @property
    def trace(self) -> list | None:
        """Flat ``(operator, detail)`` events derived from the span tree.

        Operators appear in the order they *finished* (children before
        parents), matching the legacy flat-trace representation.
        """
        if self.spans is None:
            return None
        return self.spans.events()

    @property
    def n_rows(self) -> int:
        return self.tuples.n_tuples

    @property
    def queue_wait_ms(self) -> float:
        """Milliseconds this query spent queued before execution started.

        Non-zero only for queries routed through a serving-layer admission
        queue (``Database.query(..., queue_wait_ms=...)``); together with
        ``wall_ms`` it decomposes end-to-end latency into wait + execute.
        """
        return float(self.stats.extra.get("queue_wait_ms", 0.0))

    def rows(self) -> list[tuple]:
        """Raw stored values as Python tuples."""
        return self.tuples.rows()

    def report(self) -> str:
        """Human-readable execution report: strategy, costs, counters, trace."""
        stats = self.stats
        lines = [
            f"strategy       {self.strategy}",
            f"rows           {self.n_rows}",
            f"wall time      {self.wall_ms:.2f} ms",
            f"model replay   {self.simulated_ms:.2f} ms",
            (
                f"I/O            {stats.block_reads} block reads, "
                f"{stats.disk_seeks} seeks, {stats.buffer_hits} pool hits, "
                f"{stats.blocks_skipped} blocks skipped"
            ),
            (
                f"decode cache   {stats.decode_hits} hits, "
                f"{stats.decode_misses} misses"
            ),
            (
                f"compressed     {stats.compressed_scans} kernel scans, "
                f"{stats.morphs} morphs"
            ),
            (
                f"CPU            {stats.values_scanned} values scanned, "
                f"{stats.tuples_constructed} tuples constructed, "
                f"{stats.positions_intersected} positions intersected"
            ),
        ]
        if "queue_wait_ms" in stats.extra:
            lines.append(
                f"queue wait     {stats.extra['queue_wait_ms']:.2f} ms "
                f"(end-to-end {stats.extra['queue_wait_ms'] + self.wall_ms:.2f} ms)"
            )
        if stats.io_retries or stats.io_gave_up:
            lines.append(
                f"fault recovery {stats.io_retries} retries, "
                f"{stats.io_gave_up} reads abandoned"
            )
        if self.degraded:
            lines.append(
                "DEGRADED       result excludes quarantined partitions: "
                + ", ".join(self.skipped_partitions)
            )
        for key, value in sorted(stats.extra.items()):
            if key == "queue_wait_ms":  # has its own line above
                continue
            lines.append(f"{key:<14} {value}")
        if self.trace:
            lines.append("operators:")
            for op, detail in self.trace:
                pretty = ", ".join(f"{k}={v}" for k, v in detail.items())
                lines.append(f"  {op:<11} {pretty}")
        return "\n".join(lines)

    def decoded_rows(self) -> list[tuple]:
        """Rows with dictionary codes and dates mapped back to logical values."""
        columns = self.tuples.columns
        out = []
        for row in self.tuples.rows():
            out.append(
                tuple(
                    self.decoders[col](value) if col in self.decoders else value
                    for col, value in zip(columns, row)
                )
            )
        return out


class Database:
    """A column-store database rooted at one directory."""

    def __init__(
        self,
        root: str | Path,
        pool_capacity_bytes: int = 256 * 1024 * 1024,
        disk: DiskModel | None = None,
        constants: ModelConstants = PAPER_CONSTANTS,
        use_multicolumns: bool = True,
        use_indexes: bool = True,
        decompress_eagerly: bool = False,
        compressed_execution: bool = True,
        decoded_cache_bytes: int = DEFAULT_DECODED_CAPACITY_BYTES,
        parallel_scans: int = 0,
        metrics: MetricsRegistry | None = None,
        slow_query_ms: float | None = None,
        fault_injector: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        on_error: str = "fail",
        query_log: "QueryLog | bool | None" = True,
        qlog_sample: float = 1.0,
        qlog_max_bytes: int | None = None,
        durability: str = "fsync",
        crash_injector=None,
    ):
        """Open (or create) a database.

        Args:
            compressed_execution: route DS1 scans through the per-encoding
                compressed kernels (:mod:`repro.compressed`) and the LM
                aggregation tail through run tables / code histograms.
                ``True`` (default) evaluates predicates in the encoded
                domain wherever the stay-vs-morph model says it wins;
                ``False`` restores the fully decoded path. Result rows are
                bit-identical either way (the compressed differential axis
                gates this). Model counters legitimately *drop* when
                kernels fire — run-length position lists are charged per
                run, not per position — so the model records the paper's
                compressed-execution advantage; within either setting the
                counters stay bit-identical across serial/parallel and
                cold/warm. ``decompress_eagerly=True`` forces this off.
            decoded_cache_bytes: byte budget for the decoded-block cache —
                the scan fast-path's second level, holding decoded value
                arrays and RLE run tables above the raw payload pool. ``0``
                disables it (every block access re-runs the decode kernel).
                Neither setting changes ``QueryStats`` cost counters or
                simulated time, only wall-clock.
            parallel_scans: worker threads for the independent scan leaves
                of the EM-parallel / LM-parallel strategies. ``0`` (default)
                keeps execution strictly serial. Counters merge
                deterministically, so results and simulated costs are
                identical to serial execution.
            metrics: registry every finished query is reported into. Defaults
                to the process-wide :data:`repro.metrics.REGISTRY`; pass a
                fresh :class:`~repro.metrics.MetricsRegistry` to isolate.
            slow_query_ms: wall-clock threshold for this database's entries
                in the registry's slow-query log. ``None`` uses the
                registry's own threshold.
            fault_injector: optional :class:`~repro.faults.FaultInjector`
                consulted before every physical block read — the test
                substrate for transient I/O errors, injected corruption and
                slow blocks. ``None`` (default) skips the hook entirely.
            retry: :class:`~repro.faults.RetryPolicy` for transient block-
                read failures (default: 3 attempts, 500 us base backoff
                charged to simulated time). Pass
                :data:`repro.faults.NO_RETRY` to fail on first error.
            on_error: ``"fail"`` (default) aborts a query on the first
                unrecovered storage error, exactly the historical contract;
                ``"degrade"`` quarantines a failing partition for the
                session and completes queries over the survivors, marking
                results ``degraded=True`` with ``skipped_partitions``.
            query_log: the workload flight recorder. ``True`` (default)
                opens a :class:`~repro.qlog.QueryLog` under
                ``<root>/_qlog/`` recording every finished query (outcome,
                strategy, counters, selectivity, result hash — see
                :mod:`repro.qlog`); pass an existing ``QueryLog`` to share
                one, or ``False``/``None`` to disable. Recorder overhead
                is gated <5% warm by ``benchmarks/bench_qlog_overhead.py``.
            qlog_sample: fraction of queries the recorder keeps (only used
                when ``query_log is True``); deterministic counter-based
                sampling.
            qlog_max_bytes: segment rotation threshold for the recorder
                (only used when ``query_log is True``); ``None`` uses
                :data:`repro.qlog.DEFAULT_SEGMENT_BYTES`.
            durability: ``"fsync"`` (default) fsyncs every WAL append (one
                fsync per accepted batch, charged to the simulated disk
                clock) and every staged-commit boundary, so acknowledged
                writes survive power loss; ``"flush"`` restores the
                buffered pre-durability behaviour — the OS may lose the
                last few acknowledged writes on a crash. See
                ``docs/durability.md``.
            crash_injector: optional :class:`~repro.faults.CrashInjector`
                consulted at every write-path boundary (WAL append/fsync/
                truncate, staging fsyncs, renames, the manifest commit) —
                the test substrate for the crash differential. ``None``
                (default) skips the hooks entirely.
        """
        if on_error not in ("fail", "degrade"):
            raise ValueError(
                f"on_error must be 'fail' or 'degrade', got {on_error!r}"
            )
        if durability not in ("fsync", "flush"):
            raise ValueError(
                f"durability must be 'fsync' or 'flush', got {durability!r}"
            )
        self.durability = durability
        self.crash_injector = crash_injector
        self.disk = disk if disk is not None else DiskModel()
        self.catalog = Catalog(root, crash=crash_injector, disk=self.disk)
        self.pool = BufferPool(
            pool_capacity_bytes,
            self.disk,
            injector=fault_injector,
            retry=retry,
        )
        self.on_error = on_error
        self.quarantine = PartitionQuarantine()
        self.decoded = (
            DecodedBlockCache(decoded_cache_bytes, pool=self.pool)
            if decoded_cache_bytes > 0
            else None
        )
        if parallel_scans > 0:
            from .operators.scheduler import ScanScheduler

            self.scheduler: ScanScheduler | None = ScanScheduler(parallel_scans)
        else:
            self.scheduler = None
        self.constants = constants
        self.use_multicolumns = use_multicolumns
        self.use_indexes = use_indexes
        self.decompress_eagerly = decompress_eagerly
        self.compressed_execution = compressed_execution
        self.metrics = metrics if metrics is not None else REGISTRY
        self.slow_query_ms = slow_query_ms
        self.metrics.register_collector("buffer_pool", self.pool.metrics)
        if self.decoded is not None:
            self.metrics.register_collector(
                "decoded_cache", self.decoded.metrics
            )
        if fault_injector is not None:
            self.metrics.register_collector(
                "fault_injector", fault_injector.metrics
            )
        self.metrics.register_collector("quarantine", self.quarantine.metrics)
        if query_log is True:
            from .qlog import DEFAULT_SEGMENT_BYTES, QueryLog

            self.qlog: "QueryLog | None" = QueryLog(
                self.catalog.root / "_qlog",
                sample=qlog_sample,
                max_segment_bytes=qlog_max_bytes or DEFAULT_SEGMENT_BYTES,
            )
        elif query_log:
            self.qlog = query_log
        else:
            self.qlog = None
        if self.qlog is not None:
            self.metrics.register_collector("query_log", self.qlog.metrics)
        # Pending changes are WAL-backed under the database root so they
        # survive process restarts until the tuple mover folds them in; the
        # catalog's wal_applied markers make that fold crash-restartable.
        self.delta = DeltaStore(
            wal_directory=self.catalog.root / "_wal",
            catalog=self.catalog,
            disk=self.disk,
            durability=durability,
            crash=crash_injector,
        )

    def projection(self, name: str) -> Projection:
        return self.catalog.get(name)

    def drop_projection(self, name: str) -> None:
        """Remove a projection and its files from the catalog."""
        self.catalog.drop_projection(name)
        self.clear_cache()

    def clear_cache(self) -> None:
        """Drop both cache levels (queries start from a cold cache)."""
        self.pool.clear()
        if self.decoded is not None:
            self.decoded.clear()

    def close(self) -> None:
        """Release the scan scheduler and detach metrics collectors."""
        if self.scheduler is not None:
            self.scheduler.close()
        self.metrics.unregister_collector("buffer_pool", self.pool.metrics)
        if self.decoded is not None:
            self.metrics.unregister_collector(
                "decoded_cache", self.decoded.metrics
            )
        if self.pool.injector is not None:
            self.metrics.unregister_collector(
                "fault_injector", self.pool.injector.metrics
            )
        self.metrics.unregister_collector("quarantine", self.quarantine.metrics)
        if self.qlog is not None:
            self.metrics.unregister_collector("query_log", self.qlog.metrics)
            self.qlog.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _context(
        self, trace: bool = False, cancel: CancelToken | None = None
    ) -> ExecutionContext:
        stats = QueryStats()
        return ExecutionContext(
            pool=self.pool,
            stats=stats,
            use_multicolumns=self.use_multicolumns,
            use_indexes=self.use_indexes,
            decompress_eagerly=self.decompress_eagerly,
            decoded=self.decoded,
            compressed=self.compressed_execution,
            constants=self.constants,
            scheduler=self.scheduler,
            tracer=SpanTracer(stats) if trace else None,
            on_error=self.on_error,
            quarantine=self.quarantine,
            cancel=cancel,
        )

    @staticmethod
    def _note_queue_wait(ctx: ExecutionContext, queue_wait_ms) -> None:
        """Record admission-queue wait so latency decomposes wait + execute.

        The wait is surfaced twice: as ``stats.extra["queue_wait_ms"]`` (so
        ``QueryResult.report()`` and ``queue_wait_ms`` see it) and, when
        tracing, as a synthetic ``QUEUE`` span under the root. The span
        carries zero model counters — queue wait is wall-clock only, so
        every span-tree simulated-time invariant is untouched — and its
        ``wall_ms`` is backdated to the measured wait.
        """
        if not queue_wait_ms:
            return
        wait = round(float(queue_wait_ms), 3)
        if ctx.tracer is not None:
            span = ctx.tracer.begin("QUEUE")
            ctx.stats.extra["queue_wait_ms"] = wait
            ctx.tracer.end(span, queue_wait_ms=wait)
            span.wall_ms = wait
        else:
            ctx.stats.extra["queue_wait_ms"] = wait

    @staticmethod
    def _finish_trace(ctx: ExecutionContext, strategy: str) -> Span | None:
        """Close the root span of a successful execution, if tracing."""
        if ctx.tracer is None:
            return None
        root = ctx.tracer.finish()
        root.detail["strategy"] = strategy
        return root

    @staticmethod
    def _abort_trace(ctx: ExecutionContext, exc: BaseException) -> None:
        """Error path: truncate the span tree and attach it to the exception.

        Any span the exception cut short is closed with ``status="error"``,
        so ``exc.spans`` is a valid (if incomplete) tree for post-mortems.
        """
        if ctx.tracer is not None:
            exc.spans = ctx.tracer.finish(error=exc)

    def _resolve_strategy(
        self, projection: Projection, query: SelectQuery, strategy
    ) -> Strategy:
        if query.disjuncts:
            # Disjunctions always run the position-union (LM) path.
            return Strategy.LM_PARALLEL
        if strategy is None or strategy == "auto":
            chosen, _predictions = choose_strategy(
                projection,
                query,
                constants=self.constants,
                resident=self.pool.resident_fraction(
                    projection.physical_column(query.all_columns[0]).file(
                        query.encoding_map.get(query.all_columns[0])
                    )
                ),
            )
            return chosen
        if isinstance(strategy, Strategy):
            return strategy
        return Strategy.from_name(str(strategy))

    def query(
        self,
        query: SelectQuery | JoinQuery,
        strategy: Strategy | str | None = "auto",
        cold: bool = False,
        trace: bool = False,
        timeout_ms: float | None = None,
        cancel: CancelToken | None = None,
        queue_wait_ms: float | None = None,
        origin: str = "embedded",
        session: str | None = None,
        pin_projection: str | None = None,
    ) -> QueryResult:
        """Execute a logical query.

        Args:
            query: a :class:`SelectQuery` or :class:`JoinQuery`.
            strategy: a :class:`Strategy` / its name, "auto" for model-driven
                choice, or for joins a :class:`RightTableStrategy` / name.
            cold: clear the buffer pool first (cold-cache measurement).
            trace: record per-operator events on ``QueryResult.trace``.
            timeout_ms: per-query deadline; expiry raises
                :class:`~repro.errors.QueryTimeoutError` at the next block
                access. Ignored when *cancel* already carries a deadline.
            cancel: cooperative :class:`~repro.cancel.CancelToken`, checked
                on every block access. Tripping it raises
                :class:`~repro.errors.QueryCancelledError`; with ``trace``
                on, the truncated-but-valid span tree rides on
                ``exc.spans``. Either way no partial result escapes.
            queue_wait_ms: milliseconds the query waited in a serving-layer
                admission queue before execution; recorded as
                ``stats.extra["queue_wait_ms"]`` and a ``QUEUE`` span so
                end-to-end latency decomposes into wait + execute.
            origin / session: provenance stamped on the query-log record —
                ``"embedded"`` (default) for in-process callers,
                ``"served"`` plus the session id for the serving layer.
            pin_projection: execute a select against exactly this stored
                projection, bypassing model-driven candidate routing.
                Replay uses it to pin each record to the projection that
                produced its recorded result hash, which stays correct
                even after the design advisor has grown the candidate
                set. Selects only; raises
                :class:`~repro.errors.CatalogError` when the projection
                does not exist or does not cover the query.
        """
        if timeout_ms is not None:
            if cancel is None:
                cancel = CancelToken(timeout_ms=timeout_ms)
            elif cancel.timeout_ms is None:
                cancel.timeout_ms = timeout_ms
        if cold:
            self.clear_cache()
        if not isinstance(query, (SelectQuery, JoinQuery)):
            raise PlanError(f"cannot execute {type(query).__name__}")
        dispatch_start = time.perf_counter()
        try:
            if isinstance(query, JoinQuery):
                result = self._run_join(
                    query, strategy, trace=trace, cancel=cancel,
                    queue_wait_ms=queue_wait_ms,
                )
            else:
                result = self._run_select(
                    query, strategy, trace=trace, cancel=cancel,
                    queue_wait_ms=queue_wait_ms,
                    pin_projection=pin_projection,
                )
        except BaseException as exc:
            if self.qlog is not None:
                self.qlog.observe_error(
                    query,
                    exc,
                    wall_ms=(time.perf_counter() - dispatch_start) * 1000.0,
                    queue_wait_ms=queue_wait_ms,
                    origin=origin,
                    session=session,
                )
            raise
        self.metrics.observe_query(
            strategy=result.strategy,
            wall_ms=result.wall_ms,
            simulated_ms=result.simulated_ms,
            rows=result.n_rows,
            description=repr(query)[:200],
            encodings=getattr(query, "encoding_map", {}).values(),
            slow_threshold_ms=self.slow_query_ms,
            queue_wait_ms=result.queue_wait_ms,
            degraded=result.degraded,
        )
        if self.qlog is not None:
            self.qlog.observe(query, result, origin=origin, session=session)
        extra = result.stats.extra
        if "partitions_total" in extra:
            self.metrics.counter("partitions_scanned_total").inc(
                extra.get("partitions_scanned", 0)
            )
            self.metrics.counter("partitions_pruned_total").inc(
                extra.get("partitions_pruned", 0)
            )
        if result.stats.io_retries:
            self.metrics.counter("io_retries_total").inc(
                result.stats.io_retries
            )
        if result.stats.io_gave_up:
            self.metrics.counter("io_gave_up_total").inc(
                result.stats.io_gave_up
            )
        if result.degraded:
            self.metrics.counter("degraded_queries_total").inc()
            self.metrics.counter("partitions_quarantined_total").inc(
                extra.get("partitions_quarantined", 0)
            )
        return result

    def _pending_table(self, *names) -> str | None:
        """First of *names* with buffered changes (inserts or deletes)."""
        for name in names:
            if name and self.delta.dirty(name):
                return name
        return None

    def _run_select(
        self,
        query: SelectQuery,
        strategy,
        trace: bool = False,
        cancel: CancelToken | None = None,
        queue_wait_ms: float | None = None,
        pin_projection: str | None = None,
    ) -> QueryResult:
        if pin_projection is not None:
            projection = self.catalog.get(pin_projection)
            missing = set(query.all_columns) - set(projection.column_names)
            if missing:
                raise CatalogError(
                    f"pinned projection {pin_projection!r} does not cover "
                    f"columns {sorted(missing)}"
                )
        else:
            projection = resolve_projection(
                self.catalog, query, constants=self.constants
            )
        resolved = self._resolve_strategy(projection, query, strategy)
        ctx = self._context(trace=trace, cancel=cancel)
        self._note_queue_wait(ctx, queue_wait_ms)
        start = time.perf_counter()
        try:
            if cancel is not None:  # e.g. the deadline expired while queued
                cancel.check()
            pending = self._pending_table(query.projection, projection.anchor)
            if pending is None:
                tuples = execute_select(ctx, projection, query, resolved)
            else:
                tuples = self._select_with_delta(
                    ctx, projection, query, resolved, pending
                )
        except BaseException as exc:
            self._abort_trace(ctx, exc)
            raise
        wall_ms = (time.perf_counter() - start) * 1000.0
        return QueryResult(
            tuples=tuples,
            strategy=resolved.value,
            stats=ctx.stats,
            wall_ms=wall_ms,
            simulated_ms=simulated_time_ms(ctx.stats, self.constants),
            decoders=self._decoders(projection, tuples.columns),
            spans=self._finish_trace(ctx, resolved.value),
            degraded=bool(ctx.skipped_partitions),
            skipped_partitions=tuple(ctx.skipped_partitions),
            base_rows=projection.n_rows,
            projection=projection.name,
        )

    def _select_with_delta(
        self, ctx, projection, query: SelectQuery, resolved, table: str
    ):
        """Merge-on-read: fold the writable store into the stored result."""
        from .operators import TupleSet
        from .planner.plans import _apply_having, _order_and_limit

        if any(s.func == "count_distinct" for s in query.aggregates):
            raise ExecutionError(
                "count(distinct) cannot merge with pending writes; call "
                "Database.merge() first"
            )
        if self.delta.deleted_count(table):
            return self._select_with_deletes(
                ctx, projection, query, resolved, table
            )
        rewritten, plan = internal_query(query)
        stored = execute_select(ctx, projection, rewritten, resolved)
        needed = rewritten.all_columns
        schemas = {col: projection.schema(col) for col in needed}
        survivors = delta_select(
            rewritten, self.delta.columns(table, schemas)
        )
        n_pending = len(next(iter(survivors.values()))) if survivors else 0
        ctx.stats.tuple_iterations += n_pending
        if query.aggregates:
            pending_partials = delta_aggregate(
                list(rewritten.aggregates),
                list(rewritten.group_columns),
                survivors,
            )
            merged = merge_aggregates(
                stored,
                pending_partials,
                list(rewritten.group_columns),
                list(rewritten.aggregates),
                plan,
                list(query.select),
            )
        else:
            pending_tuples = TupleSet.stitch(
                {col: survivors[col] for col in query.select},
                stats=ctx.stats,
            )
            merged = TupleSet.concat([stored, pending_tuples])
        merged = _apply_having(ctx, merged, query)
        ctx.stats.tuples_output = merged.n_tuples
        return _order_and_limit(ctx, merged, query)

    def _select_with_deletes(
        self, ctx, projection, query: SelectQuery, resolved, table: str
    ):
        """Merge-on-read under pending deletes: the row-level path.

        Deleted rows still sit inside the stored projections, so stored
        results must have the delete multiset subtracted *before* any
        aggregation. The stored side runs the chosen strategy as a
        row-returning query over the group/value columns (so all four
        strategies stay exercised and bit-identical), the delete multiset
        is subtracted row-for-row, pending survivors are appended, and
        aggregation/HAVING/ORDER run over the merged rows.
        """
        from collections import Counter
        from dataclasses import replace as _dc_replace

        from .operators import TupleSet
        from .planner.plans import _apply_having, _order_and_limit

        if query.aggregates:
            internal_specs, plan = expand_avg(query.aggregates)
            value_cols = [s.column for s in internal_specs if s.column]
            out_cols = list(
                dict.fromkeys(list(query.group_columns) + value_cols)
            )
        else:
            internal_specs, plan = [], {}
            out_cols = list(query.select)
        row_query = _dc_replace(
            query,
            select=tuple(out_cols),
            aggregates=(),
            group_by=None,
            order_by=(),
            limit=None,
            having=(),
        )
        stored = execute_select(ctx, projection, row_query, resolved)
        schemas = {
            col: projection.schema(col) for col in row_query.all_columns
        }
        ghost_survivors = delta_select(
            row_query, self.delta.deleted_columns(table, schemas)
        )
        pending_survivors = delta_select(
            row_query, self.delta.columns(table, schemas)
        )
        n_ghost = (
            len(next(iter(ghost_survivors.values())))
            if ghost_survivors else 0
        )
        n_pending = (
            len(next(iter(pending_survivors.values())))
            if pending_survivors else 0
        )
        stored_rows = stored.select(out_cols).rows()
        ctx.stats.tuple_iterations += len(stored_rows) + n_ghost + n_pending
        ghosts: Counter = Counter()
        for i in range(n_ghost):
            ghosts[tuple(int(ghost_survivors[c][i]) for c in out_cols)] += 1
        alive = []
        for row in stored_rows:
            key = tuple(int(v) for v in row)
            if ghosts.get(key, 0):
                ghosts[key] -= 1
            else:
                alive.append(key)
        if sum(ghosts.values()):
            raise ExecutionError(
                f"delete multiset for {table!r} names rows the stored "
                f"projection {projection.name!r} does not hold "
                "(writable store out of sync with the read store)"
            )
        combined: dict = {}
        for ci, col in enumerate(out_cols):
            stored_side = np.array(
                [row[ci] for row in alive], dtype=np.int64
            )
            pending_side = (
                pending_survivors[col].astype(np.int64)
                if n_pending
                else np.array([], dtype=np.int64)
            )
            combined[col] = np.concatenate((stored_side, pending_side))
        if query.aggregates:
            partials = delta_aggregate(
                internal_specs, list(query.group_columns), combined
            )
            finished: dict = {
                g: partials.column(g) for g in query.group_columns
            }
            for output, how in plan.items():
                if how[0] == "avg":
                    sums = partials.column(how[1])
                    counts = partials.column(how[2])
                    finished[output] = sums // np.maximum(counts, 1)
                else:
                    finished[output] = partials.column(how[1])
            merged = TupleSet.stitch(
                {col: finished[col] for col in query.select},
                stats=ctx.stats,
            )
        else:
            merged = TupleSet.stitch(
                {col: combined[col] for col in query.select},
                stats=ctx.stats,
            )
        merged = _apply_having(ctx, merged, query)
        ctx.stats.tuples_output = merged.n_tuples
        return _order_and_limit(ctx, merged, query)

    def _write_target(self, table: str, predicates) -> tuple:
        """Resolve a delete/update target: schemas plus a covering projection.

        Returns ``(schemas, cover)`` where *schemas* is the union over every
        candidate projection and *cover* is a projection holding every table
        column — required because deletes capture full rows, so any
        projection (whatever its column subset) can subtract them later.
        """
        candidates = self.catalog.candidates(table)
        if not candidates:
            raise CatalogError(f"unknown projection or table {table!r}")
        schemas: dict = {}
        for proj in candidates:
            for col in proj.column_names:
                schemas.setdefault(col, proj.schema(col))
        for pred in predicates:
            if pred.column not in schemas:
                raise CatalogError(
                    f"unknown column {pred.column!r} of table {table!r}"
                )
        cover = next(
            (
                proj
                for proj in candidates
                if set(schemas) <= set(proj.column_names)
            ),
            None,
        )
        if cover is None:
            raise CatalogError(
                f"no projection of {table!r} covers every column; deletes "
                "and updates need one full-width projection to resolve rows"
            )
        return schemas, cover

    def _match_rows(
        self, table: str, predicates, schemas, cover
    ) -> tuple[list[dict], list[dict]]:
        """Stored and pending rows matching *predicates* (encoded domain).

        Stored matches already queued for deletion are excluded (a row can
        only die once); predicates take stored-domain values, exactly like
        :class:`~repro.planner.logical.SelectQuery` predicates.
        """
        from collections import Counter

        stored_cols = {
            col: cover.read_column_values(col) for col in schemas
        }
        n = len(next(iter(stored_cols.values()))) if stored_cols else 0
        mask = np.ones(n, dtype=bool)
        for pred in predicates:
            mask &= pred.mask(stored_cols[pred.column])
        order = sorted(schemas)
        already = Counter(
            tuple(int(row[c]) for c in order)
            for row in self.delta.deleted_rows(table)
        )
        stored_matches: list[dict] = []
        for i in np.flatnonzero(mask):
            row = {col: int(stored_cols[col][i]) for col in schemas}
            key = tuple(row[c] for c in order)
            if already.get(key, 0):
                already[key] -= 1
            else:
                stored_matches.append(row)
        pending_rows = self.delta.rows(table)
        pending_matches: list[dict] = []
        if pending_rows:
            arrays = {
                pred.column: np.array(
                    [row[pred.column] for row in pending_rows],
                    dtype=np.int64,
                )
                for pred in predicates
            }
            pmask = np.ones(len(pending_rows), dtype=bool)
            for pred in predicates:
                pmask &= pred.mask(arrays[pred.column])
            pending_matches = [
                pending_rows[i] for i in np.flatnonzero(pmask)
            ]
        return stored_matches, pending_matches

    def delete(self, table: str, predicates) -> int:
        """Delete every row of *table* matching all *predicates*.

        Stored matches become WAL-logged delete markers subtracted from
        every query until the tuple mover drops them for good; pending
        (not-yet-merged) matches are removed immediately. One WAL record
        makes the whole delete atomic. Returns the number of rows deleted.
        Predicate values are in the stored (encoded) domain, exactly as in
        :class:`~repro.planner.logical.SelectQuery`.
        """
        predicates = tuple(predicates)
        schemas, cover = self._write_target(table, predicates)
        stored_matches, pending_matches = self._match_rows(
            table, predicates, schemas, cover
        )
        if not stored_matches and not pending_matches:
            return 0
        return self.delta.delete(table, stored_matches, pending_matches)

    def update(self, table: str, predicates, assignments: dict) -> int:
        """Update matching rows of *table*: ``assignments`` is column ->
        new (logical-domain) value, encoded through the column schema like
        :meth:`insert` values.

        Implemented as delete+insert in one atomic WAL record: matched
        stored rows become delete markers, and every match re-enters the
        writable store with the assignments applied. Returns the number of
        rows updated.
        """
        predicates = tuple(predicates)
        schemas, cover = self._write_target(table, predicates)
        unknown = set(assignments) - set(schemas)
        if unknown:
            raise CatalogError(
                f"unknown column(s) {sorted(unknown)} of table {table!r}"
            )
        encoded = {
            col: schemas[col].encode_value(value)
            for col, value in assignments.items()
        }
        stored_matches, pending_matches = self._match_rows(
            table, predicates, schemas, cover
        )
        if not stored_matches and not pending_matches:
            return 0
        new_rows = [
            dict(row, **encoded)
            for row in stored_matches + pending_matches
        ]
        return self.delta.update(
            table, stored_matches, pending_matches, new_rows
        )

    def insert(self, table: str, rows: list[dict]) -> int:
        """Buffer rows into the writable store for *table* (an anchor name).

        Rows become visible to selection and aggregation queries immediately
        (merge-on-read); call :meth:`merge` to fold them into the read store.
        """
        candidates = self.catalog.candidates(table)
        if not candidates:
            raise CatalogError(f"unknown projection or table {table!r}")
        schemas: dict = {}
        for proj in candidates:
            for col in proj.column_names:
                schemas.setdefault(col, proj.schema(col))
        return self.delta.insert(table, rows, schemas)

    def pending(self, table: str) -> int:
        """Number of buffered (not yet merged) changes for *table*:
        pending inserted rows plus pending delete markers."""
        return self.delta.count(table) + self.delta.deleted_count(table)

    def merge(self, table: str) -> int:
        """The tuple mover: fold buffered changes into every projection of
        *table*.

        Rebuilds each projection (sort, encode, checksum, index, histogram)
        from (stored − deleted) + pending rows and publishes every rebuild
        in ONE atomic manifest commit — staged under ``tmp-*/``, fsynced,
        renamed, committed by ``os.replace`` of the manifest (see
        :meth:`repro.storage.catalog.Catalog.commit_merge`). The WAL is
        truncated strictly after the commit; a crash anywhere in between
        recovers via the manifest's ``wal_applied`` marker, so re-merging
        is idempotent. Returns the number of changes moved.
        """
        moved = self.delta.count(table) + self.delta.deleted_count(table)
        if moved == 0:
            return 0
        deleted_rows = self.delta.deleted_rows(table)
        builds = []
        for proj in sorted(
            self.catalog.candidates(table), key=lambda p: p.name
        ):
            schemas = {c: proj.schema(c) for c in proj.column_names}
            pending_cols = self.delta.columns(table, schemas)
            stored = {
                col: proj.read_column_values(col)
                for col in proj.column_names
            }
            if deleted_rows:
                keep = multiset_keep_mask(
                    stored, deleted_rows, list(proj.column_names)
                )
                stored = {col: vals[keep] for col, vals in stored.items()}
            data = {
                col: np.concatenate((stored[col], pending_cols[col]))
                for col in proj.column_names
            }
            builds.append(
                dict(
                    name=proj.name,
                    data=data,
                    schemas=schemas,
                    sort_keys=list(proj.sort_keys),
                    encodings={
                        col: proj.physical_column(col).encodings
                        for col in proj.column_names
                    },
                    anchor=proj.anchor,
                    partitions=max(len(proj.partitions), 1),
                )
            )
        self.catalog.commit_merge(
            table, builds, self.delta.wal_records(table)
        )
        self.delta.mark_applied(table)
        self.clear_cache()  # stale payloads for the replaced files
        return moved

    def _run_join(
        self,
        query: JoinQuery,
        strategy,
        trace: bool = False,
        cancel: CancelToken | None = None,
        queue_wait_ms: float | None = None,
    ) -> QueryResult:
        for side in (query.left, query.right):
            candidates = self.catalog.candidates(side)
            anchor = candidates[0].anchor if candidates else None
            pending = self._pending_table(side, anchor)
            if pending is not None:
                raise ExecutionError(
                    f"table {pending!r} has {self.pending(pending)} "
                    "pending writes; call Database.merge() before joining"
                )
        left_needed = [query.left_key, *query.left_select] + [
            p.column for p in query.left_predicates
        ]
        left = resolve_join_side(self.catalog, query.left, left_needed)
        right = resolve_join_side(
            self.catalog, query.right, [query.right_key, *query.right_select]
        )
        if strategy is None or strategy == "auto":
            resolved = RightTableStrategy.MATERIALIZED
        elif isinstance(strategy, RightTableStrategy):
            resolved = strategy
        else:
            resolved = RightTableStrategy.from_name(str(strategy))
        ctx = self._context(trace=trace, cancel=cancel)
        self._note_queue_wait(ctx, queue_wait_ms)
        start = time.perf_counter()
        try:
            if cancel is not None:
                cancel.check()
            tuples = execute_join(ctx, left, right, query, resolved)
        except BaseException as exc:
            self._abort_trace(ctx, exc)
            raise
        wall_ms = (time.perf_counter() - start) * 1000.0
        decoders = self._decoders(left, tuples.columns)
        decoders.update(self._decoders(right, tuples.columns))
        return QueryResult(
            tuples=tuples,
            strategy=resolved.value,
            stats=ctx.stats,
            wall_ms=wall_ms,
            simulated_ms=simulated_time_ms(ctx.stats, self.constants),
            decoders=decoders,
            spans=self._finish_trace(ctx, resolved.value),
        )

    def scrub(self, deep: bool = False):
        """Verify every stored block offline; see :mod:`repro.scrub`.

        Walks each catalog projection (and partition children), checking
        block checksums and structural invariants straight off disk —
        independent of query traffic, the buffer pool, and any fault
        injector. Returns a :class:`~repro.scrub.ScrubReport` naming every
        corrupt file/block; with ``deep=True`` payloads are also decoded
        and validated against their descriptors.
        """
        from .scrub import scrub_catalog

        return scrub_catalog(self.catalog, deep=deep)

    def sql(
        self,
        statement: str,
        strategy: Strategy | str | None = "auto",
        encodings: dict[str, str] | None = None,
        cold: bool = False,
        timeout_ms: float | None = None,
        cancel: CancelToken | None = None,
        queue_wait_ms: float | None = None,
    ) -> QueryResult:
        """Parse, bind, and execute a SQL statement.

        Args:
            statement: the SQL text (see :mod:`repro.sql` for the subset).
            strategy: materialization strategy, as for :meth:`query`.
            encodings: optional column -> stored-encoding override.
            cold: clear the buffer pool first.
            timeout_ms / cancel / queue_wait_ms: as for :meth:`query`.
        """
        from .sql import bind, parse

        query = bind(parse(statement), self.catalog, encodings=encodings)
        return self.query(
            query,
            strategy=strategy,
            cold=cold,
            timeout_ms=timeout_ms,
            cancel=cancel,
            queue_wait_ms=queue_wait_ms,
        )

    def describe(self, query: SelectQuery, strategy: Strategy | str = "auto") -> str:
        """Render the physical plan for *query* without executing it."""
        from .planner import describe_plan

        projection = resolve_projection(
            self.catalog, query, constants=self.constants
        )
        resolved = self._resolve_strategy(projection, query, strategy)
        return describe_plan(projection, query, resolved)

    def explain(
        self,
        query: SelectQuery | JoinQuery,
        resident: float = 0.0,
        analyze: bool = False,
        strategy: Strategy | str | None = "auto",
        timeout_ms: float | None = None,
        cancel: CancelToken | None = None,
        queue_wait_ms: float | None = None,
    ) -> dict:
        """Per-strategy model predictions for *query* (the optimizer's view).

        Selection queries compare the four materialization strategies; join
        queries compare the three inner-table strategies (via the join model
        extension).

        With ``analyze=True`` the query is *executed* (with tracing on, under
        the given *strategy*) and the result is an EXPLAIN ANALYZE report
        instead: ``{"strategy", "rows", "wall_ms", "simulated_ms",
        "queue_wait_ms", "total_ms", "root" (the Span tree), "text"
        (rendered tree), "json" (export dict)}``. ``queue_wait_ms`` is the
        admission-queue wait passed through to :meth:`query` (0.0 outside a
        serving context) and ``total_ms`` is wait + execute, so serving
        latency decomposes in the report itself.
        """
        if analyze:
            from .planner.describe import render_span_tree

            result = self.query(
                query,
                strategy=strategy,
                trace=True,
                timeout_ms=timeout_ms,
                cancel=cancel,
                queue_wait_ms=queue_wait_ms,
            )
            report = {
                "strategy": result.strategy,
                "rows": result.n_rows,
                "wall_ms": result.wall_ms,
                "simulated_ms": result.simulated_ms,
                "queue_wait_ms": result.queue_wait_ms,
                "total_ms": result.queue_wait_ms + result.wall_ms,
                "root": result.spans,
                "text": render_span_tree(result.spans, self.constants),
                "json": result.spans.to_dict(self.constants),
            }
            if result.stats.compressed_scans or result.stats.morphs:
                report["compressed"] = {
                    "kernel_scans": result.stats.compressed_scans,
                    "morphs": result.stats.morphs,
                }
            extra = result.stats.extra
            if "partitions_total" in extra:
                report["partitions"] = {
                    "total": extra["partitions_total"],
                    "scanned": extra.get("partitions_scanned", 0),
                    "pruned": extra.get("partitions_pruned", 0),
                }
            if result.degraded:
                report["degraded"] = True
                report["skipped_partitions"] = list(
                    result.skipped_partitions
                )
            return report
        if isinstance(query, JoinQuery):
            from .model.predictor import predict_join

            left_needed = [query.left_key, *query.left_select] + [
                p.column for p in query.left_predicates
            ]
            left = resolve_join_side(self.catalog, query.left, left_needed)
            right = resolve_join_side(
                self.catalog,
                query.right,
                [query.right_key, *query.right_select],
            )
            predictions = {
                s: predict_join(
                    left, right, query, s,
                    constants=self.constants, resident=resident,
                )
                for s in RightTableStrategy
            }
            best = min(predictions, key=lambda s: predictions[s].total_ms)
            return {
                "chosen": best.value,
                "predictions": {
                    s.value: p.total_ms for s, p in predictions.items()
                },
                "details": predictions,
            }
        projection = resolve_projection(
            self.catalog, query, constants=self.constants
        )
        best, predictions = choose_strategy(
            projection, query, constants=self.constants, resident=resident
        )
        report = {
            "chosen": best.value,
            "predictions": {
                s.value: p.total_ms for s, p in predictions.items()
            },
            "details": predictions,
        }
        if projection.is_partitioned:
            from .planner.partitioned import prune_partitions

            survivors, total = prune_partitions(projection, query)
            report["partitions"] = {
                "total": total,
                "scanned": len(survivors),
                "pruned": total - len(survivors),
                "survivors": [p.name for p in survivors],
            }
        return report

    def _decoders(self, projection: Projection, columns) -> dict:
        out = {}
        for col in columns:
            if col in projection.columns:
                schema = projection.schema(col)
                if schema.dictionary or schema.ctype.name == "date":
                    out[col] = schema.decode_value
        return out
