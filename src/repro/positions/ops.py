"""Operations over mixed position-set representations."""

from __future__ import annotations

from functools import reduce

import numpy as np

from .base import PositionSet
from .bitmap import BitmapPositions
from .listed import ListedPositions
from .ranges import RangePositions
from .runlist import RunPositions

# Below this fraction of set bits, a listed representation is denser than a
# bitmap (64 bits per listed position vs 1 bit per covered position).
SPARSE_THRESHOLD = 1.0 / 64.0


def from_mask(offset: int, mask: np.ndarray) -> PositionSet:
    """Choose a position representation for a window-relative boolean mask.

    Mirrors the paper's descriptor choice: a single contiguous run becomes a
    range, sparse results become listed positions, everything else a bitmap.
    """
    n = int(mask.sum())
    if n == 0:
        return RangePositions.empty()
    nz = np.nonzero(mask)[0]
    first, last = int(nz[0]), int(nz[-1])
    if last - first + 1 == n:
        return RangePositions(offset + first, offset + last + 1)
    if n < mask.size * SPARSE_THRESHOLD:
        return ListedPositions(offset + nz.astype(np.int64), assume_sorted=True)
    return BitmapPositions.from_mask(offset, mask)


def intersect_all(sets: list[PositionSet]) -> PositionSet:
    """AND together any number of position sets.

    Implements the paper's AND Case 3 ordering: ranges are intersected first
    (constant cost each), then run lists (per-run cost, still compressed),
    then the remaining sets are folded in. Intersecting the cheap
    representations first shrinks the window every later operation works on.
    """
    if not sets:
        raise ValueError("intersect_all of zero sets is undefined")
    ranges = [s for s in sets if isinstance(s, RangePositions)]
    runlists = [s for s in sets if isinstance(s, RunPositions)]
    others = [
        s for s in sets if not isinstance(s, (RangePositions, RunPositions))
    ]
    ordered = ranges + runlists + others
    return reduce(lambda a, b: a.intersect(b), ordered)


def union_all(sets: list[PositionSet]) -> PositionSet:
    """OR together any number of position sets."""
    if not sets:
        raise ValueError("union_all of zero sets is undefined")
    bitmaps = [s for s in sets if isinstance(s, BitmapPositions)]
    aligned = (
        len(bitmaps) == len(sets)
        and len({(b.offset, b.nbits) for b in bitmaps}) == 1
    )
    if aligned:
        # Word-wise OR when every input covers the same window — the path the
        # bit-vector encoding uses to evaluate range predicates.
        words = reduce(lambda a, b: a | b, (b.words for b in bitmaps))
        return BitmapPositions(bitmaps[0].offset, bitmaps[0].nbits, words)
    return reduce(lambda a, b: a.union(b), sets)


def union_via_arrays(a: PositionSet, b: PositionSet) -> PositionSet:
    """Fallback union through sorted arrays; re-picks a compact representation."""
    merged = np.union1d(a.to_array(), b.to_array())
    if merged.size == 0:
        return RangePositions.empty()
    lo, hi = int(merged[0]), int(merged[-1])
    if hi - lo + 1 == merged.size:
        return RangePositions(lo, hi + 1)
    span = hi - lo + 1
    if merged.size < span * SPARSE_THRESHOLD:
        return ListedPositions(merged, assume_sorted=True)
    mask = np.zeros(span, dtype=bool)
    mask[merged - lo] = True
    return BitmapPositions.from_mask(lo, mask)
