"""Contiguous position ranges."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .base import PositionSet


class RangePositions(PositionSet):
    """The half-open contiguous range ``[start, stop)``.

    Ranges arise from predicates over sorted columns (a clustered range scan
    matches one contiguous slab) and are the cheapest representation to
    intersect: range AND range is a constant-time clamp, and range AND bitmap
    is a bitmap slice.
    """

    __slots__ = ("start", "stop")

    kind = "range"

    def __init__(self, start: int, stop: int):
        if stop < start:
            stop = start
        self.start = int(start)
        self.stop = int(stop)

    @classmethod
    def empty(cls) -> "RangePositions":
        return cls(0, 0)

    def count(self) -> int:
        return self.stop - self.start

    def is_empty(self) -> bool:
        return self.stop <= self.start

    def bounds(self) -> tuple[int, int] | None:
        if self.is_empty():
            return None
        return self.start, self.stop - 1

    def to_array(self) -> np.ndarray:
        return np.arange(self.start, self.stop, dtype=np.int64)

    def to_mask(self, start: int, stop: int) -> np.ndarray:
        mask = np.zeros(stop - start, dtype=bool)
        lo = max(self.start, start)
        hi = min(self.stop, stop)
        if hi > lo:
            mask[lo - start : hi - start] = True
        return mask

    def restrict(self, start: int, stop: int) -> "RangePositions":
        return RangePositions(max(self.start, start), min(self.stop, stop))

    def runs(self) -> Iterator[tuple[int, int]]:
        if not self.is_empty():
            yield self.start, self.stop

    def contains(self, position: int) -> bool:
        return self.start <= position < self.stop

    def intersect(self, other: PositionSet) -> PositionSet:
        if self.is_empty():
            return RangePositions.empty()
        if isinstance(other, RangePositions):
            return RangePositions(
                max(self.start, other.start), min(self.stop, other.stop)
            )
        # Intersecting a range with anything else is a restriction of the
        # other set to this window — the paper's "constant number of
        # instructions" case for range AND bit-string.
        return other.restrict(self.start, self.stop)

    def union(self, other: PositionSet) -> PositionSet:
        if self.is_empty():
            return other
        if isinstance(other, RangePositions):
            if other.is_empty():
                return self
            # Overlapping or adjacent ranges merge into one range.
            if other.start <= self.stop and self.start <= other.stop:
                return RangePositions(
                    min(self.start, other.start), max(self.stop, other.stop)
                )
        from .ops import union_via_arrays

        return union_via_arrays(self, other)

    def __repr__(self) -> str:
        return f"RangePositions({self.start}, {self.stop})"
