"""Explicit sorted position lists."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .base import PositionSet, runs_from_array


class ListedPositions(PositionSet):
    """A sorted array of distinct positions.

    The best representation when few positions survive filtering — the paper's
    "listed positions" descriptor, "particularly useful when few positions
    inside a multi-column are valid".
    """

    __slots__ = ("positions",)

    kind = "listed"

    def __init__(self, positions: np.ndarray, *, assume_sorted: bool = False):
        arr = np.asarray(positions, dtype=np.int64)
        if not assume_sorted:
            arr = np.unique(arr)
        self.positions = arr

    @classmethod
    def empty(cls) -> "ListedPositions":
        return cls(np.empty(0, dtype=np.int64), assume_sorted=True)

    def count(self) -> int:
        return int(self.positions.size)

    def is_empty(self) -> bool:
        return self.positions.size == 0

    def bounds(self) -> tuple[int, int] | None:
        if self.is_empty():
            return None
        return int(self.positions[0]), int(self.positions[-1])

    def to_array(self) -> np.ndarray:
        return self.positions

    def to_mask(self, start: int, stop: int) -> np.ndarray:
        mask = np.zeros(stop - start, dtype=bool)
        sel = self.positions[
            (self.positions >= start) & (self.positions < stop)
        ]
        mask[sel - start] = True
        return mask

    def restrict(self, start: int, stop: int) -> "ListedPositions":
        lo = np.searchsorted(self.positions, start, side="left")
        hi = np.searchsorted(self.positions, stop, side="left")
        return ListedPositions(self.positions[lo:hi], assume_sorted=True)

    def runs(self) -> Iterator[tuple[int, int]]:
        return runs_from_array(self.positions)

    def contains(self, position: int) -> bool:
        idx = np.searchsorted(self.positions, position)
        return idx < self.positions.size and self.positions[idx] == position

    def intersect(self, other: PositionSet) -> PositionSet:
        from .ranges import RangePositions

        if isinstance(other, RangePositions):
            return other.intersect(self)
        if isinstance(other, ListedPositions):
            common = np.intersect1d(
                self.positions, other.positions, assume_unique=True
            )
            return ListedPositions(common, assume_sorted=True)
        # listed AND bitmap: probe the bitmap's window.
        b = other.bounds()
        if b is None or self.is_empty():
            return ListedPositions.empty()
        window = self.restrict(b[0], b[1] + 1)
        if window.is_empty():
            return ListedPositions.empty()
        mask = other.to_mask(b[0], b[1] + 1)
        keep = mask[window.positions - b[0]]
        return ListedPositions(window.positions[keep], assume_sorted=True)

    def union(self, other: PositionSet) -> PositionSet:
        from .ops import union_via_arrays

        return union_via_arrays(self, other)

    def __repr__(self) -> str:
        return f"ListedPositions(n={self.count()})"
