"""Run-length-encoded position sets.

A :class:`RunPositions` holds sorted, disjoint, non-adjacent half-open runs
``[starts[i], stops[i])``. It is the natural output of a predicate evaluated
over RLE run tables (one emitted run per surviving value run) and the
representation that lets AND intersection stay compressed: two run lists
intersect in work proportional to the number of runs, never the number of
covered positions. This is the position-side half of compressed execution —
the paper's Section 3.3 descriptors extended with MorphStore-style
run-length intermediates.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .base import PositionSet


def _normalize(
    starts: np.ndarray, stops: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Drop empty runs and merge adjacent ones; inputs must be sorted."""
    keep = stops > starts
    if not keep.all():
        starts, stops = starts[keep], stops[keep]
    if starts.size > 1:
        # Runs touching end-to-start are one logical run.
        gap = starts[1:] > stops[:-1]
        if not gap.all():
            first = np.concatenate(([True], gap))
            last = np.concatenate((gap, [True]))
            starts, stops = starts[first], stops[last]
    return starts, stops


class RunPositions(PositionSet):
    """Sorted, disjoint, non-adjacent half-open position runs.

    The compressed-execution counterpart of :class:`RangePositions`: where a
    range describes one contiguous slab, a run list describes many, staying
    proportional to the *run structure* of the data rather than its row
    count. Construction normalizes the invariant (adjacent runs merge, empty
    runs drop), so every instance round-trips through ``runs()`` unchanged.
    """

    __slots__ = ("starts", "stops")

    kind = "runs"

    def __init__(self, starts: np.ndarray, stops: np.ndarray):
        starts = np.ascontiguousarray(starts, dtype=np.int64)
        stops = np.ascontiguousarray(stops, dtype=np.int64)
        if starts.shape != stops.shape:
            raise ValueError("starts and stops must be parallel arrays")
        self.starts, self.stops = _normalize(starts, stops)

    @classmethod
    def from_runs(cls, starts: np.ndarray, stops: np.ndarray) -> PositionSet:
        """Build the cheapest representation for sorted disjoint runs.

        A single surviving run collapses to :class:`RangePositions` (the
        cheapest set to intersect downstream); no run at all is the canonical
        empty range.
        """
        from .ranges import RangePositions

        out = cls(starts, stops)
        if out.n_runs == 0:
            return RangePositions.empty()
        if out.n_runs == 1:
            return RangePositions(int(out.starts[0]), int(out.stops[0]))
        return out

    @classmethod
    def empty(cls) -> "RunPositions":
        e = np.empty(0, dtype=np.int64)
        return cls(e, e)

    @property
    def n_runs(self) -> int:
        """Number of maximal runs — the unit compressed operators iterate in."""
        return int(self.starts.size)

    def count(self) -> int:
        return int((self.stops - self.starts).sum())

    def is_empty(self) -> bool:
        return self.starts.size == 0

    def bounds(self) -> tuple[int, int] | None:
        if self.is_empty():
            return None
        return int(self.starts[0]), int(self.stops[-1]) - 1

    def to_array(self) -> np.ndarray:
        if self.is_empty():
            return np.empty(0, dtype=np.int64)
        lengths = self.stops - self.starts
        # Vectorised expansion: an all-ones delta array whose run boundaries
        # jump by the inter-run gap, cumsum'd from the first start.
        out = np.ones(int(lengths.sum()), dtype=np.int64)
        out[0] = self.starts[0]
        if self.n_runs > 1:
            firsts = np.cumsum(lengths[:-1])
            out[firsts] = self.starts[1:] - self.stops[:-1] + 1
        return np.cumsum(out)

    def to_mask(self, start: int, stop: int) -> np.ndarray:
        s = np.clip(self.starts, start, stop)
        e = np.clip(self.stops, start, stop)
        keep = e > s
        delta = np.zeros(stop - start + 1, dtype=np.int32)
        np.add.at(delta, s[keep] - start, 1)
        np.add.at(delta, e[keep] - start, -1)
        return np.cumsum(delta[:-1]) > 0

    def restrict(self, start: int, stop: int) -> PositionSet:
        lo = int(np.searchsorted(self.stops, start, side="right"))
        hi = int(np.searchsorted(self.starts, stop, side="left"))
        starts = np.maximum(self.starts[lo:hi], start)
        stops = np.minimum(self.stops[lo:hi], stop)
        return RunPositions.from_runs(starts, stops)

    def runs(self) -> Iterator[tuple[int, int]]:
        for s, e in zip(self.starts, self.stops):
            yield int(s), int(e)

    def contains(self, position: int) -> bool:
        idx = int(np.searchsorted(self.starts, position, side="right")) - 1
        return idx >= 0 and position < self.stops[idx]

    def intersect(self, other: PositionSet) -> PositionSet:
        from .bitmap import BitmapPositions
        from .listed import ListedPositions
        from .ranges import RangePositions

        if self.is_empty() or other.is_empty():
            return RangePositions.empty()
        if isinstance(other, RangePositions):
            return self.restrict(other.start, other.stop)
        if isinstance(other, RunPositions):
            return self._intersect_runs(other)
        if isinstance(other, ListedPositions):
            return other.intersect(self)
        if isinstance(other, BitmapPositions):
            lo, hi = other.offset, other.offset + other.nbits
            window = self.restrict(lo, hi)
            if window.is_empty():
                return RangePositions.empty()
            b = window.bounds()
            lo, hi = b[0], b[1] + 1
            from .ops import from_mask

            mask = window.to_mask(lo, hi) & other.to_mask(lo, hi)
            return from_mask(lo, mask)
        return other.intersect(self)  # pragma: no cover - unknown peers

    def _intersect_runs(self, other: "RunPositions") -> PositionSet:
        """Run-list AND run-list without leaving run space.

        For each of our runs, binary-search the window of other-runs it
        overlaps, then emit the pairwise clamps. Work is O((m + n + k) log)
        in the run counts, independent of covered positions — the
        compressed-intersection win.
        """
        first = np.searchsorted(other.stops, self.starts, side="right")
        last = np.searchsorted(other.starts, self.stops, side="left")
        counts = last - first
        hits = counts > 0
        if not hits.any():
            from .ranges import RangePositions

            return RangePositions.empty()
        a_starts = self.starts[hits]
        a_stops = self.stops[hits]
        first = first[hits]
        counts = counts[hits]
        # Expand the overlap windows into explicit (a-run, b-run) pairs.
        a_idx = np.repeat(np.arange(a_starts.size), counts)
        offsets = np.arange(int(counts.sum())) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        b_idx = np.repeat(first, counts) + offsets
        starts = np.maximum(a_starts[a_idx], other.starts[b_idx])
        stops = np.minimum(a_stops[a_idx], other.stops[b_idx])
        return RunPositions.from_runs(starts, stops)

    def union(self, other: PositionSet) -> PositionSet:
        from .ranges import RangePositions

        if self.is_empty():
            return other
        if isinstance(other, RangePositions):
            if other.is_empty():
                return self
            other = RunPositions(
                np.array([other.start]), np.array([other.stop])
            )
        if isinstance(other, RunPositions):
            starts = np.concatenate((self.starts, other.starts))
            stops = np.concatenate((self.stops, other.stops))
            order = np.argsort(starts, kind="stable")
            s, e = starts[order], stops[order]
            running = np.maximum.accumulate(e)
            # A new merged run begins wherever a start clears every earlier
            # stop (equality means adjacency, which merges).
            new_run = np.concatenate(([True], s[1:] > running[:-1]))
            firsts = np.nonzero(new_run)[0]
            lasts = np.concatenate((firsts[1:] - 1, [s.size - 1]))
            return RunPositions.from_runs(s[firsts], running[lasts])
        from .ops import union_via_arrays

        return union_via_arrays(self, other)

    def __repr__(self) -> str:
        return f"RunPositions(runs={self.n_runs}, n={self.count()})"
