"""Bit-mapped position sets packed into 64-bit words."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .base import PositionSet, runs_from_array

WORD_BITS = 64


def pack_mask(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean mask into little-endian uint64 words."""
    nbits = mask.size
    nwords = (nbits + WORD_BITS - 1) // WORD_BITS
    if nwords * WORD_BITS != nbits:
        padded = np.zeros(nwords * WORD_BITS, dtype=bool)
        padded[:nbits] = mask
        mask = padded
    packed = np.packbits(mask, bitorder="little")
    return packed.view(np.uint64)


def unpack_words(words: np.ndarray, nbits: int) -> np.ndarray:
    """Unpack uint64 words back into a boolean mask of length ``nbits``."""
    as_bytes = words.view(np.uint8)
    bits = np.unpackbits(as_bytes, bitorder="little", count=nbits)
    return bits.astype(bool, copy=False)


class BitmapPositions(PositionSet):
    """One bit per position over the covering window ``[offset, offset+nbits)``.

    This is the representation for which the paper claims 32/64-way SIMD-like
    intersection: two bitmaps over the same window AND together with one word
    operation per 64 positions. Positions outside the window are not members.
    """

    __slots__ = ("offset", "nbits", "words")

    kind = "bitmap"

    def __init__(self, offset: int, nbits: int, words: np.ndarray):
        expected = (nbits + WORD_BITS - 1) // WORD_BITS
        if words.size != expected:
            raise ValueError(
                f"bitmap of {nbits} bits needs {expected} words, got {words.size}"
            )
        self.offset = int(offset)
        self.nbits = int(nbits)
        self.words = np.ascontiguousarray(words, dtype=np.uint64)

    @classmethod
    def from_mask(cls, offset: int, mask: np.ndarray) -> "BitmapPositions":
        return cls(offset, mask.size, pack_mask(mask))

    @classmethod
    def empty(cls) -> "BitmapPositions":
        return cls(0, 0, np.empty(0, dtype=np.uint64))

    def count(self) -> int:
        return int(np.bitwise_count(self.words).sum())

    def is_empty(self) -> bool:
        return self.nbits == 0 or not self.words.any()

    def bounds(self) -> tuple[int, int] | None:
        if self.is_empty():
            return None
        mask = self.local_mask()
        nz = np.nonzero(mask)[0]
        return self.offset + int(nz[0]), self.offset + int(nz[-1])

    def local_mask(self) -> np.ndarray:
        """The window-relative boolean mask."""
        return unpack_words(self.words, self.nbits)

    def to_array(self) -> np.ndarray:
        return self.offset + np.nonzero(self.local_mask())[0].astype(np.int64)

    def to_mask(self, start: int, stop: int) -> np.ndarray:
        mask = np.zeros(stop - start, dtype=bool)
        local = self.local_mask()
        lo = max(start, self.offset)
        hi = min(stop, self.offset + self.nbits)
        if hi > lo:
            mask[lo - start : hi - start] = local[lo - self.offset : hi - self.offset]
        return mask

    def restrict(self, start: int, stop: int) -> PositionSet:
        lo = max(start, self.offset)
        hi = min(stop, self.offset + self.nbits)
        if hi <= lo:
            return BitmapPositions.empty()
        return BitmapPositions.from_mask(
            lo, self.local_mask()[lo - self.offset : hi - self.offset]
        )

    def runs(self) -> Iterator[tuple[int, int]]:
        return runs_from_array(self.to_array())

    def contains(self, position: int) -> bool:
        if not self.offset <= position < self.offset + self.nbits:
            return False
        bit = position - self.offset
        word = self.words[bit // WORD_BITS]
        return bool((int(word) >> (bit % WORD_BITS)) & 1)

    def _aligned_with(self, other: "BitmapPositions") -> bool:
        return self.offset == other.offset and self.nbits == other.nbits

    def intersect(self, other: PositionSet) -> PositionSet:
        from .ranges import RangePositions

        if isinstance(other, RangePositions):
            return other.intersect(self)
        if isinstance(other, BitmapPositions):
            if self._aligned_with(other):
                # The fast path: word-wise AND, 64 positions per operation.
                return BitmapPositions(
                    self.offset, self.nbits, self.words & other.words
                )
            lo = max(self.offset, other.offset)
            hi = min(self.offset + self.nbits, other.offset + other.nbits)
            if hi <= lo:
                return BitmapPositions.empty()
            mask = self.to_mask(lo, hi) & other.to_mask(lo, hi)
            return BitmapPositions.from_mask(lo, mask)
        # bitmap AND listed: delegate to the listed implementation.
        return other.intersect(self)

    def union(self, other: PositionSet) -> PositionSet:
        if isinstance(other, BitmapPositions) and self._aligned_with(other):
            return BitmapPositions(self.offset, self.nbits, self.words | other.words)
        from .ops import union_via_arrays

        return union_via_arrays(self, other)

    def __repr__(self) -> str:
        return f"BitmapPositions(offset={self.offset}, nbits={self.nbits})"
