"""Abstract position-set interface."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

import numpy as np


class PositionSet(ABC):
    """An immutable set of row positions within a column.

    All concrete representations expose the same algebra so operators can mix
    them freely; conversions happen lazily inside the binary operations.
    """

    __slots__ = ()

    kind: str = "abstract"

    @abstractmethod
    def count(self) -> int:
        """Number of positions in the set."""

    @abstractmethod
    def is_empty(self) -> bool:
        """True when no position is contained."""

    @abstractmethod
    def bounds(self) -> tuple[int, int] | None:
        """Smallest and largest contained position, or None when empty."""

    @abstractmethod
    def to_array(self) -> np.ndarray:
        """Materialise as a sorted int64 array of positions."""

    @abstractmethod
    def to_mask(self, start: int, stop: int) -> np.ndarray:
        """Boolean mask over the window ``[start, stop)``.

        Index ``i`` of the result is True iff position ``start + i`` is in
        the set. Positions outside the window are simply not represented.
        """

    @abstractmethod
    def intersect(self, other: "PositionSet") -> "PositionSet":
        """Set intersection with another position set (any representation)."""

    @abstractmethod
    def union(self, other: "PositionSet") -> "PositionSet":
        """Set union with another position set (any representation)."""

    @abstractmethod
    def restrict(self, start: int, stop: int) -> "PositionSet":
        """Subset of positions falling in ``[start, stop)``."""

    @abstractmethod
    def runs(self) -> Iterator[tuple[int, int]]:
        """Iterate maximal contiguous runs as ``(start, stop)`` half-open pairs."""

    def contains(self, position: int) -> bool:
        """Membership test for a single position (mainly for tests)."""
        lo_hi = self.bounds()
        if lo_hi is None or not lo_hi[0] <= position <= lo_hi[1]:
            return False
        return bool(np.isin(position, self.to_array()))

    # The word size used when intersecting bitmaps; the paper's "32 (or 64)
    # positions per instruction".
    WORD_BITS = 64

    def __len__(self) -> int:
        return self.count()

    def __bool__(self) -> bool:
        return not self.is_empty()

    def __eq__(self, other) -> bool:
        if not isinstance(other, PositionSet):
            return NotImplemented
        return np.array_equal(self.to_array(), other.to_array())

    def __hash__(self):  # pragma: no cover - sets are not meant to be keys
        return id(self)


def runs_from_array(positions: np.ndarray) -> Iterator[tuple[int, int]]:
    """Yield maximal contiguous runs from a sorted position array."""
    if positions.size == 0:
        return
    breaks = np.nonzero(np.diff(positions) != 1)[0]
    run_starts = np.concatenate(([0], breaks + 1))
    run_ends = np.concatenate((breaks, [positions.size - 1]))
    for s, e in zip(run_starts, run_ends):
        yield int(positions[s]), int(positions[e]) + 1
