"""Position-set representations and their boolean algebra.

A position is the ordinal offset of a value within a column. Late
materialization operates on *sets of positions* instead of values; the paper
(Section 2.1.1, 3.3) considers three physical representations, all provided
here:

* :class:`RangePositions` — a contiguous ``[start, stop)`` run.
* :class:`BitmapPositions` — one bit per position over a covering window,
  packed into 64-bit words so that 64 positions are intersected per machine
  word operation.
* :class:`ListedPositions` — an explicit sorted array of positions, best when
  few positions survive.
* :class:`RunPositions` — sorted disjoint runs, the compressed-execution
  representation: RLE predicate kernels emit one run per surviving value
  run, and AND intersects run lists in work proportional to the run count.

:func:`from_mask` picks a representation from a boolean mask using the same
heuristics the paper describes (ranges when contiguous, bitmaps when dense,
lists when sparse), and :func:`intersect_all` / :func:`union_all` implement
the AND/OR operators over any mix of representations.
"""

from .base import PositionSet
from .ranges import RangePositions
from .listed import ListedPositions
from .bitmap import BitmapPositions
from .runlist import RunPositions
from .ops import from_mask, intersect_all, union_all

__all__ = [
    "PositionSet",
    "RangePositions",
    "ListedPositions",
    "BitmapPositions",
    "RunPositions",
    "from_mask",
    "intersect_all",
    "union_all",
]
