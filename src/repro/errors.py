"""Exception hierarchy for the repro column store.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Subclasses separate storage-format problems from query
construction problems from executor-state problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class StorageError(ReproError):
    """A column file, block, or catalog is malformed or unreadable."""


class CorruptBlockError(StorageError):
    """A block failed checksum or structural validation on read.

    The message always names the column file path and the block index, so
    operators (and the scrubber) can locate the damaged bytes without a
    stack trace.
    """


class TransientIOError(StorageError):
    """A block read failed in a way a retry may fix (simulated flaky I/O).

    Raised by the fault-injection layer (:mod:`repro.faults`) to model the
    transient device errors a production column store retries through. Like
    :class:`CorruptBlockError`, the message always names the column file
    path and block index.
    """


class QuarantinedPartitionError(StorageError):
    """A partition was quarantined after exhausting its error budget.

    Recorded (not raised) when ``Database(on_error="degrade")`` takes a
    partition out of service for the rest of the session; queries keep
    completing over the surviving partitions with ``degraded=True``. The
    recorded entries are readable via ``Database.quarantine.entries()``.
    """

    def __init__(self, projection: str, partition: str, cause: str):
        super().__init__(
            f"partition {partition!r} of projection {projection!r} is "
            f"quarantined: {cause}"
        )
        self.projection = projection
        self.partition = partition
        self.cause = cause


class EncodingError(StorageError):
    """Values cannot be encoded/decoded with the requested encoding."""


class CatalogError(StorageError):
    """A projection or column is missing from, or duplicated in, the catalog."""


class PlanError(ReproError):
    """A logical query cannot be turned into a physical plan."""


class UnsupportedOperationError(PlanError):
    """The requested operator/encoding combination is not supported.

    The canonical example from the paper: positional filtering (DS3) on a
    bit-vector encoded column is impossible because one cannot know a priori
    which bit-string holds a given position's value.
    """


class ExecutionError(ReproError):
    """An operator tree entered an inconsistent state during execution."""


class QueryCancelledError(ReproError):
    """A query was cooperatively cancelled before it completed.

    Raised from :meth:`repro.cancel.CancelToken.check`, which the execution
    context consults on every block access — so cancellation lands at a
    block boundary, never mid-operator. When the query was traced, the
    truncated-but-valid span tree is attached as ``exc.spans`` (the same
    contract as storage failures): either a complete result is returned or
    the whole execution is abandoned. There is no partial result.
    """


class QueryTimeoutError(QueryCancelledError):
    """A query exceeded its deadline (per-query ``timeout_ms``).

    The deadline covers the query's whole life, including any time spent in
    a serving-layer admission queue — a query that waited out its budget is
    cancelled before execution even starts.
    """


class SQLError(ReproError):
    """The SQL front-end could not tokenize, parse, or bind a statement."""
