"""Header-only selectivity estimation.

Pipelined strategies want the most selective predicate first, and the cost
model needs SF terms. Both are served by a cheap estimator that looks only at
block descriptors (min/max/value counts), assuming values are uniformly
spread within each block's range — adequate for ordering predicates and for
the model's accuracy envelope.
"""

from __future__ import annotations

from ..predicates import Predicate
from ..storage.column_file import ColumnFile


def _block_fraction(pred: Predicate, lo: float, hi: float) -> float:
    """Estimated fraction of values in [lo, hi] satisfying *pred* (uniform)."""
    width = hi - lo + 1.0
    if pred.op in ("<", "<="):
        boundary = pred.value if pred.op == "<" else pred.value + 1
        return min(max((boundary - lo) / width, 0.0), 1.0)
    if pred.op in (">", ">="):
        boundary = pred.value + 1 if pred.op == ">" else pred.value
        return min(max((hi - boundary + 1) / width, 0.0), 1.0)
    if pred.op == "=":
        return 1.0 / width if lo <= pred.value <= hi else 0.0
    # "!=" keeps everything except one value's share.
    return 1.0 - (1.0 / width if lo <= pred.value <= hi else 0.0)


def estimate_selectivity(column_file: ColumnFile, pred) -> float:
    """Estimate the fraction of a column's values satisfying *pred*.

    Accepts a single :class:`Predicate` or a
    :class:`~repro.predicates.ColumnConjunction` (selectivities multiplied
    under the independence assumption).
    """
    if hasattr(pred, "predicates"):
        return estimate_conjunction(column_file, list(pred.predicates))
    total = column_file.n_values
    if total == 0:
        return 0.0
    if column_file.histogram is not None and column_file.histogram.n_values:
        return column_file.histogram.estimate(pred)
    if hasattr(pred, "in_values"):
        expected = 0.0
        for desc in column_file.descriptors:
            width = desc.max_value - desc.min_value + 1.0
            hits = sum(
                1 for v in pred.in_values if desc.min_value <= v <= desc.max_value
            )
            expected += desc.n_values * min(hits / width, 1.0)
        return min(max(expected / total, 0.0), 1.0)
    expected = 0.0
    for desc in column_file.descriptors:
        expected += desc.n_values * _block_fraction(
            pred, desc.min_value, desc.max_value
        )
    return min(max(expected / total, 0.0), 1.0)


def estimate_read_fraction(column_file: ColumnFile, pred) -> float:
    """Fraction of blocks a predicate scan must read, from block min/max.

    Captures clusteredness regardless of encoding: a sorted FOR- or
    uncompressed column skips exactly the blocks whose value range cannot
    match, the same test the executor's DS1 applies.
    """
    if column_file.n_blocks == 0:
        return 0.0
    overlapping = sum(
        1
        for d in column_file.descriptors
        if pred.overlaps_range(d.min_value, d.max_value)
    )
    return overlapping / column_file.n_blocks


def estimate_block_fragments(column_file: ColumnFile, pred) -> int:
    """Number of contiguous groups of blocks whose min/max can match *pred*.

    Positions produced by a predicate over a (semi-)sorted column are
    localized into this many slabs; a positional scan of another column then
    pays roughly one disk seek per slab, not one per block.
    """
    fragments = 0
    previous = False
    for desc in column_file.descriptors:
        current = pred.overlaps_range(desc.min_value, desc.max_value)
        if current and not previous:
            fragments += 1
        previous = current
    return max(fragments, 1)


def estimate_conjunction(
    column_file: ColumnFile, predicates: list[Predicate]
) -> float:
    """Estimate combined selectivity of several predicates on one column.

    Assumes independence — the standard (and standardly wrong) assumption;
    fine for strategy selection.
    """
    sf = 1.0
    for pred in predicates:
        sf *= estimate_selectivity(column_file, pred)
    return sf
