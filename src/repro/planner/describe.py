"""Textual physical-plan rendering (EXPLAIN, with and without executing).

Two renderers live here:

* :func:`describe_plan` mirrors the plan shapes :mod:`repro.planner.plans`
  builds, annotated with the physical facts the strategy decision rests on:
  encodings, block counts, run lengths, estimated selectivities, index
  availability.
* :func:`render_span_tree` renders a *measured* execution — the span tree
  EXPLAIN ANALYZE produces — with per-operator wall-clock, simulated-time
  attribution and cache interactions.
"""

from __future__ import annotations

from ..errors import UnsupportedOperationError
from ..storage.projection import Projection
from .estimate import estimate_selectivity
from .logical import SelectQuery
from .strategies import Strategy

#: detail keys already surfaced elsewhere on a span line.
_SKIP_DETAIL = frozenset(
    {"rows", "tuples", "tuples_out", "positions", "positions_out", "matches"}
)


def _span_label(span) -> str:
    """One-line operator label: name plus the interesting detail items."""
    bits = []
    for key, value in span.detail.items():
        if key in _SKIP_DETAIL or value is None:
            continue
        if isinstance(value, (list, tuple)):
            value = ",".join(str(v) for v in value)
        bits.append(f"{key}={value}")
    label = span.name
    if span.status == "error":
        label += " !ERROR"
    if bits:
        label += " (" + " ".join(bits) + ")"
    return label


def _span_measurements(span, constants) -> str:
    """The measured half of a span line: rows, times, cache interactions."""
    bits = []
    if span.rows_out is not None:
        bits.append(f"rows={span.rows_out}")
    bits.append(f"wall={span.wall_ms:.3f}ms")
    if constants is not None:
        bits.append(f"sim={span.simulated_ms(constants):.3f}ms")
        bits.append(f"self={span.self_simulated_ms(constants):.3f}ms")
    s = span.stats
    if s.block_reads or s.buffer_hits:
        bits.append(f"io={s.block_reads}r/{s.buffer_hits}h")
    if s.decode_hits or s.decode_misses:
        bits.append(f"decode={s.decode_hits}h/{s.decode_misses}m")
    if s.blocks_skipped:
        bits.append(f"skipped={s.blocks_skipped}")
    return "  [" + " ".join(bits) + "]"


def render_span_tree(span, constants=None) -> str:
    """ASCII EXPLAIN ANALYZE tree for a measured execution.

    Each line shows one operator span: its detail, output cardinality,
    wall-clock, cumulative and *self* simulated time (per-span self times
    sum to the whole query's model replay), and its buffer-pool /
    decoded-cache interactions.
    """
    lines = [_span_label(span) + _span_measurements(span, constants)]

    def walk(node, prefix: str) -> None:
        for i, child in enumerate(node.children):
            last = i == len(node.children) - 1
            lines.append(
                prefix + "+- " + _span_label(child)
                + _span_measurements(child, constants)
            )
            walk(child, prefix + ("   " if last else "|  "))

    walk(span, "")
    return "\n".join(lines)


def _column_note(projection: Projection, query: SelectQuery, col: str) -> str:
    cf = projection.column(col).file(query.encoding_map.get(col))
    bits = [cf.encoding.name, f"{cf.n_blocks} blocks"]
    if cf.avg_run_length > 1.05:
        bits.append(f"runs~{cf.avg_run_length:.0f}")
    if projection.column(col).index is not None:
        bits.append("indexed")
    return ", ".join(bits)


def _pred_lines(projection, query, col_preds, indent="    ") -> list[str]:
    lines = []
    for col, pred in col_preds.items():
        cf = projection.column(col).file(query.encoding_map.get(col))
        sf = estimate_selectivity(cf, pred)
        lines.append(
            f"{indent}DS1({pred}) [{_column_note(projection, query, col)}, "
            f"SF~{sf:.3f}]"
        )
    return lines


def describe_plan(
    projection: Projection, query: SelectQuery, strategy: Strategy
) -> str:
    """Render the physical operator tree for *query* under *strategy*.

    Partitioned projections render the zone-map pruning outcome first, then
    each surviving partition's sub-plan (indented, header dropped) — the
    same shape per-partition execution fans out.
    """
    from ..predicates import combine_column_predicates

    if projection.is_partitioned:
        from .partitioned import prune_partitions

        survivors, total = prune_partitions(projection, query)
        lines = [
            f"{strategy.value} plan over range-partitioned projection "
            f"{projection.name!r} "
            f"({len(survivors)}/{total} partitions after zone-map pruning)"
        ]
        if not survivors:
            lines.append(
                "  all partitions pruned: zone maps exclude every predicate"
            )
            return "\n".join(lines)
        for part in survivors:
            lines.append(f"  {part.name} ({part.n_rows} rows)")
            sub = describe_plan(part.open(), query, strategy)
            lines.extend("  " + line for line in sub.splitlines()[1:])
        return "\n".join(lines)

    by_column: dict[str, list] = {}
    source = query.disjuncts if query.disjuncts else (query.predicates,)
    for group in source:
        for pred in group:
            by_column.setdefault(pred.column, []).append(pred)
    col_preds = {
        col: combine_column_predicates(preds)
        for col, preds in by_column.items()
    }
    ordered = sorted(
        col_preds,
        key=lambda col: estimate_selectivity(
            projection.column(col).file(query.encoding_map.get(col)),
            col_preds[col],
        ),
    )
    value_cols = query.value_columns

    lines = [f"{strategy.value} plan over projection {projection.name!r}"]
    tail = []
    if query.aggregates:
        outputs = ", ".join(s.output_name for s in query.aggregates)
        groups = ", ".join(query.group_columns)
        tail.append(f"  Aggregate({outputs} GROUP BY {groups})")
    if query.order_by:
        keys = ", ".join(
            f"{c}{' DESC' if d else ''}" for c, d in query.order_by
        )
        tail.append(f"  OrderBy({keys})")
    if query.limit is not None:
        tail.append(f"  Limit({query.limit})")

    if query.disjuncts:
        lines += tail
        lines.append(f"  Merge({', '.join(value_cols)})")
        for col in value_cols:
            lines.append(f"    DS3({col}) [{_column_note(projection, query, col)}]")
        lines.append("    UNION of position sets")
        for group in query.disjuncts:
            group_preds = {
                col: combine_column_predicates(preds)
                for col, preds in _group_by_column(group).items()
            }
            lines.append("      AND")
            lines += _pred_lines(projection, query, group_preds, indent="        ")
        return "\n".join(lines)

    if strategy is Strategy.EM_PARALLEL:
        lines += tail
        preds = ", ".join(str(p) for p in col_preds.values()) or "true"
        cols = ", ".join(
            f"{c} [{_column_note(projection, query, c)}]"
            for c in dict.fromkeys(list(col_preds) + value_cols)
        )
        lines.append(f"  SPC({preds})")
        lines.append(f"    scan all blocks of: {cols}")
        return "\n".join(lines)

    if strategy is Strategy.EM_PIPELINED:
        lines += tail
        depth = 1
        chain = []
        first = ordered[0] if ordered else (value_cols or [None])[0]
        rest = ordered[1:] + [c for c in value_cols if c not in col_preds]
        for col in reversed(rest):
            pred = col_preds.get(col)
            label = str(pred) if pred is not None else f"fetch {col}"
            chain.append((f"DS4({label})", col))
        for text, col in chain:
            lines.append(
                "  " * depth + f"{text} [{_column_note(projection, query, col)}]"
            )
            depth += 1
        first_pred = col_preds.get(first)
        label = str(first_pred) if first_pred is not None else f"scan {first}"
        lines.append(
            "  " * depth
            + f"DS2({label}) [{_column_note(projection, query, first)}]"
        )
        return "\n".join(lines)

    # LM strategies share the extraction/merge top.
    lines += tail
    if query.aggregates:
        lines.append(
            "  vector aggregation input (no tuples constructed before groups)"
        )
    else:
        lines.append(f"  Merge({', '.join(value_cols)})")
    for col in value_cols:
        reaccess = col in col_preds
        suffix = " [re-access via pinned mini-column]" if reaccess else ""
        lines.append(
            f"    DS3({col}) [{_column_note(projection, query, col)}]{suffix}"
        )
    if strategy is Strategy.LM_PARALLEL:
        if len(ordered) > 1:
            lines.append("    AND")
            lines += _pred_lines(projection, query, col_preds, indent="      ")
        elif ordered:
            lines += _pred_lines(projection, query, col_preds, indent="    ")
        else:
            lines.append("    full position range (no predicates)")
        return "\n".join(lines)

    # LM-pipelined.
    depth = 2
    for col in ordered[1:][::-1]:
        cf = projection.column(col).file(query.encoding_map.get(col))
        if not cf.encoding.supports_position_filtering:
            raise UnsupportedOperationError(
                f"LM-pipelined cannot position-filter {col!r} "
                f"({cf.encoding.name})"
            )
        lines.append(
            "  " * depth
            + f"DS3+filter({col_preds[col]}) "
            + f"[{_column_note(projection, query, col)}]"
        )
        depth += 1
    if ordered:
        first = ordered[0]
        lines.append(
            "  " * depth
            + f"DS1({col_preds[first]}) "
            + f"[{_column_note(projection, query, first)}]"
        )
    else:
        lines.append("  " * depth + "full position range (no predicates)")
    return "\n".join(lines)


def _group_by_column(group) -> dict[str, list]:
    by_column: dict[str, list] = {}
    for pred in group:
        by_column.setdefault(pred.column, []).append(pred)
    return by_column
