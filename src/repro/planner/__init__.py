"""Query planning: logical queries, materialization strategies, plan builders.

The planner turns a :class:`~repro.planner.logical.SelectQuery` or
:class:`~repro.planner.logical.JoinQuery` into one of the paper's four
physical plan shapes (EM/LM x pipelined/parallel) and executes it; the
model-driven :mod:`~repro.planner.optimizer` picks the strategy the
analytical cost model predicts to be fastest.
"""

from .logical import JoinQuery, SelectQuery
from .strategies import LeftTableStrategy, RightTableStrategy, Strategy
from .plans import execute_join, execute_select
from .estimate import estimate_selectivity
from .optimizer import choose_strategy
from .projection_choice import resolve_projection
from .describe import describe_plan

__all__ = [
    "SelectQuery",
    "JoinQuery",
    "Strategy",
    "LeftTableStrategy",
    "RightTableStrategy",
    "execute_select",
    "execute_join",
    "estimate_selectivity",
    "choose_strategy",
    "resolve_projection",
    "describe_plan",
]
