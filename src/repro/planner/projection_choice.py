"""Projection selection for anchor tables.

C-Store stores one logical table as several projections, each sorted
differently; the optimizer routes a query to the projection whose physical
design fits it best. Candidates must cover every column the query touches;
among those, the winner is the one whose cheapest materialization strategy
the analytical model predicts to be fastest — predicates matching a
projection's sort prefix benefit from run-length compression, clustered
indexes, and block skipping, all of which the model sees through the
candidate's column metadata.
"""

from __future__ import annotations

from ..errors import CatalogError, UnsupportedOperationError
from ..storage.catalog import Catalog
from ..storage.projection import Projection


def covering_candidates(catalog: Catalog, query) -> list[Projection]:
    """Candidate projections of the query's table that cover its columns."""
    candidates = catalog.candidates(query.projection)
    if not candidates:
        raise CatalogError(f"unknown projection or table {query.projection!r}")
    needed = set(query.all_columns)
    covering = [
        p for p in candidates if needed <= set(p.column_names)
    ]
    if not covering:
        raise CatalogError(
            f"no projection of {query.projection!r} covers columns "
            f"{sorted(needed)}"
        )
    return covering


def resolve_projection(
    catalog: Catalog, query, constants=None, resident: float = 0.0
) -> Projection:
    """Pick the best covering projection for *query*.

    A direct projection name resolves to itself; an anchor-table name with
    several covering projections is decided by the model's cheapest
    applicable strategy per candidate.
    """
    covering = covering_candidates(catalog, query)
    if len(covering) == 1:
        return covering[0]

    from ..model.constants import PAPER_CONSTANTS
    from ..model.predictor import predict_select
    from .strategies import Strategy

    constants = constants or PAPER_CONSTANTS
    best_projection = None
    best_ms = float("inf")
    for projection in covering:
        for strategy in Strategy:
            try:
                # Encoding overrides may name encodings a candidate lacks;
                # such a candidate simply loses that strategy.
                predicted = predict_select(
                    projection,
                    query,
                    strategy,
                    constants=constants,
                    resident=resident,
                ).total_ms
            except (CatalogError, UnsupportedOperationError):
                continue
            if predicted < best_ms:
                best_ms = predicted
                best_projection = projection
    if best_projection is None:
        # Every prediction failed (e.g. encoding overrides excluded all
        # candidates) — fall back to the first covering candidate.
        return covering[0]
    return best_projection


def resolve_join_side(
    catalog: Catalog, name: str, needed_columns: list[str]
) -> Projection:
    """Pick a projection of *name* covering the join's needed columns.

    Partitioned projections cannot serve as a join side (the join operators
    address one contiguous position space); they are skipped, and if only
    partitioned candidates cover the columns the query is rejected rather
    than silently mis-executed.
    """
    candidates = catalog.candidates(name)
    if not candidates:
        raise CatalogError(f"unknown projection or table {name!r}")
    needed = set(needed_columns)
    partitioned_only = None
    for projection in candidates:
        if needed <= set(projection.column_names):
            if projection.is_partitioned:
                partitioned_only = projection
                continue
            return projection
    if partitioned_only is not None:
        raise UnsupportedOperationError(
            f"projection {partitioned_only.name!r} is range-partitioned and "
            "cannot be a join side; store an unpartitioned covering "
            "projection for joins"
        )
    raise CatalogError(
        f"no projection of {name!r} covers columns {sorted(needed)}"
    )
