"""Per-partition execution of selections over range-partitioned projections.

The pipeline has three stages, all visible in the span tree:

* **PRUNE** — intersect the query's predicates with each partition's zone
  maps (:class:`~repro.storage.partition.ZoneMap`) and keep only the
  partitions that could contain matches. Pruning is *conservative*: a
  partition is skipped only when its zone map provably excludes every
  matching row (``overlaps_range`` is false), so pruned execution returns
  exactly the unpruned result.
* **PARTITION** (one span per survivor) — run the ordinary operator tree
  (:func:`repro.planner.plans.build_select`) over the partition's child
  projection. Survivors fan out through the scan scheduler when one is
  configured, each leaf with private stats and tracer merged back in
  partition order, so counters and spans are deterministic however threads
  interleave.
* **COMBINE** — stitch the partial results back together. Selections
  concatenate in partition order (partitions are contiguous chunks of the
  globally sorted rows, so this reproduces the unpartitioned output order
  exactly); aggregates re-combine partial aggregates by group key using the
  same AVG -> SUM+COUNT rewrite the writable-store merge uses
  (:func:`repro.delta.internal_query` / :func:`repro.delta.merge_aggregates`).

HAVING / ORDER BY / LIMIT and the output drain run exactly once, over the
combined result, matching the unpartitioned tail.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..delta import internal_query, merge_aggregates
from ..errors import (
    CatalogError,
    CorruptBlockError,
    StorageError,
    UnsupportedOperationError,
)
from ..operators import ExecutionContext, TupleSet, drain
from ..storage.partition import PartitionInfo
from ..storage.projection import Projection
from .logical import SelectQuery
from .plans import _apply_having, _grouped_predicates, _order_and_limit, build_select
from .strategies import Strategy


@dataclass(frozen=True)
class _QuarantineSkip:
    """Sentinel a degraded partition task returns instead of a TupleSet."""

    partition: str
    error: str


def _zone_overlaps(part: PartitionInfo, predicates) -> bool:
    """Could this partition hold a row satisfying the whole conjunction?"""
    for col, pred in _grouped_predicates(predicates).items():
        zone = part.zone_maps.get(col)
        if zone is not None and not pred.overlaps_range(
            zone.min_value, zone.max_value
        ):
            return False
    return True


def partition_may_match(part: PartitionInfo, query: SelectQuery) -> bool:
    """Zone-map admission test for one partition.

    Conjunctions survive only when every column predicate overlaps the
    partition's zone map; a disjunction survives when *any* of its
    conjunction groups does. Both directions are conservative — compound
    per-column predicates use :meth:`ColumnConjunction.overlaps_range`,
    which never rules out a satisfiable partition.
    """
    if query.disjuncts:
        return any(_zone_overlaps(part, group) for group in query.disjuncts)
    return _zone_overlaps(part, query.predicates)


def prune_partitions(
    projection: Projection, query: SelectQuery
) -> tuple[list[PartitionInfo], int]:
    """Partitions that may contain matches, plus the total partition count."""
    survivors = [
        part
        for part in projection.partitions
        if partition_may_match(part, query)
    ]
    return survivors, len(projection.partitions)


def _partition_task(
    projection: Projection,
    part: PartitionInfo,
    query: SelectQuery,
    strategy: Strategy,
):
    """One scan-scheduler task: the full sub-plan over one partition.

    Storage-level failures opening the partition (missing directory or
    column file, unreadable header) are translated to a
    :class:`~repro.errors.CatalogError` naming the partition — a partitioned
    query never silently returns the other partitions' rows.
    :class:`~repro.errors.CorruptBlockError` passes through untranslated so
    a mid-scan corruption keeps its span-truncation semantics.

    Under ``on_error="degrade"`` the task instead *contains* any storage
    failure: the partition's span subtree is truncated in place, the
    partition is quarantined for the session, and a :class:`_QuarantineSkip`
    sentinel is returned so the combine stage can complete over the
    survivors.
    """

    def task(ctx: ExecutionContext) -> TupleSet | _QuarantineSkip:
        span = ctx.begin("PARTITION")
        try:
            try:
                child = part.open()
                result = build_select(ctx, child, query, strategy)
            except (CorruptBlockError, CatalogError):
                raise
            except (StorageError, OSError) as exc:
                raise CatalogError(
                    f"partition {part.name!r} of projection "
                    f"{projection.name!r} is unreadable: {exc}"
                ) from exc
        except (StorageError, OSError) as exc:
            if ctx.on_error != "degrade":
                raise
            if ctx.quarantine is not None:
                ctx.quarantine.record(projection.name, part.name, exc)
            ctx.abort(span, exc, partition=part.name, quarantined=True)
            return _QuarantineSkip(part.name, f"{type(exc).__name__}: {exc}")
        if span is not None:
            ctx.end(span, partition=part.name, rows=result.n_tuples)
        return result

    return task


def execute_partitioned_select(
    ctx: ExecutionContext,
    projection: Projection,
    query: SelectQuery,
    strategy: Strategy,
) -> TupleSet:
    """Prune, fan out, and re-combine a selection over a partitioned projection."""
    if any(s.func == "count_distinct" for s in query.aggregates):
        raise UnsupportedOperationError(
            "count(distinct) partials cannot be re-combined across "
            "partitions; query an unpartitioned projection instead"
        )
    span = ctx.begin("PRUNE")
    survivors, total = prune_partitions(projection, query)
    # Under degraded execution, partitions already quarantined this session
    # are taken out of the fan-out up front — the query completes over the
    # rest and is marked degraded. In fail mode the quarantine is never
    # consulted, preserving the all-or-nothing contract bit-for-bit.
    pre_skipped: list[str] = []
    if ctx.on_error == "degrade" and ctx.quarantine is not None:
        active = []
        for part in survivors:
            if ctx.quarantine.is_quarantined(projection.name, part.name):
                pre_skipped.append(part.name)
            else:
                active.append(part)
        survivors = active
    extra = ctx.stats.extra
    extra["partitions_total"] = extra.get("partitions_total", 0) + total
    extra["partitions_scanned"] = (
        extra.get("partitions_scanned", 0) + len(survivors)
    )
    extra["partitions_pruned"] = (
        extra.get("partitions_pruned", 0) + (total - len(survivors) - len(pre_skipped))
    )
    if span is not None:
        detail = dict(
            partitions=total,
            scanned=len(survivors),
            pruned=total - len(survivors) - len(pre_skipped),
            survivors=[p.name for p in survivors],
        )
        if pre_skipped:
            detail["quarantined"] = pre_skipped
        ctx.end(span, **detail)
    # The same rewrite the writable-store merge uses: strip ORDER BY / LIMIT
    # / HAVING (applied once, after the combine) and expand AVG into
    # mergeable SUM + COUNT partials. Idempotent, so a query the delta path
    # already rewrote passes through unchanged.
    sub_query, plan = internal_query(query)
    results = ctx.map_leaves(
        [
            _partition_task(projection, part, sub_query, strategy)
            for part in survivors
        ]
    )
    partials = [r for r in results if not isinstance(r, _QuarantineSkip)]
    newly_failed = [r for r in results if isinstance(r, _QuarantineSkip)]
    skipped = pre_skipped + [s.partition for s in newly_failed]
    if skipped:
        ctx.skipped_partitions.extend(skipped)
        extra["partitions_quarantined"] = (
            extra.get("partitions_quarantined", 0) + len(newly_failed)
        )
        extra["partitions_skipped"] = (
            extra.get("partitions_skipped", 0) + len(skipped)
        )
    merged = _combine(ctx, query, sub_query, plan, partials)
    merged = _apply_having(ctx, merged, query)
    merged = _order_and_limit(ctx, merged, query)
    return drain(ctx, merged)


def _combine(
    ctx: ExecutionContext,
    query: SelectQuery,
    sub_query: SelectQuery,
    plan: dict,
    partials: list[TupleSet],
) -> TupleSet:
    """Deterministically merge per-partition results (partition order)."""
    if not partials:
        return TupleSet.empty(tuple(query.select))
    if not query.aggregates:
        if len(partials) == 1:
            return partials[0]
        return TupleSet.concat(partials)
    span = ctx.begin("COMBINE")
    # Partial aggregates re-combine by group key exactly like stored-plus-
    # pending results do; the recombination touches every partial row once.
    ctx.stats.tuple_iterations += sum(p.n_tuples for p in partials)
    rest = (
        TupleSet.concat(partials[1:])
        if len(partials) > 1
        else TupleSet.empty(partials[0].columns)
    )
    merged = merge_aggregates(
        partials[0],
        rest,
        list(sub_query.group_columns),
        list(sub_query.aggregates),
        plan,
        list(query.select),
    )
    if span is not None:
        ctx.end(span, partitions=len(partials), rows=merged.n_tuples)
    return merged
