"""Logical query descriptions.

A logical query names *what* to compute — projection, output columns,
conjunctive predicates, optional group-by aggregation, optional join — and,
because the paper's experiments vary physical representation, *which stored
encoding* to scan for each column. The strategy (how to materialize) is kept
separate and supplied at execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PlanError
from ..operators.aggregate import AggSpec
from ..predicates import Predicate


@dataclass(frozen=True)
class SelectQuery:
    """A selection (optionally aggregating) query over one projection.

    Attributes:
        projection: name of the projection to scan.
        select: output columns. For aggregate queries these are the group-by
            column plus aggregate output names.
        predicates: conjunctive single-column predicates.
        group_by: group-by column name(s) — a single name or a tuple — or
            None for plain selection.
        aggregates: aggregate specs (requires ``group_by``).
        encodings: optional per-column physical encoding override.
        order_by: output ordering as (column, descending) pairs; columns must
            appear in ``select``.
        limit: keep only the first N output tuples (after ordering).
    """

    projection: str
    select: tuple[str, ...]
    predicates: tuple[Predicate, ...] = ()
    group_by: str | tuple[str, ...] | None = None
    aggregates: tuple[AggSpec, ...] = ()
    encodings: tuple[tuple[str, str], ...] = ()
    order_by: tuple[tuple[str, bool], ...] = ()
    limit: int | None = None
    #: Disjunctive-normal-form WHERE: OR of conjunction groups. Mutually
    #: exclusive with ``predicates``; queries with disjuncts execute through
    #: the position-set union path (OR on position lists, paper §2.1.1).
    disjuncts: tuple[tuple[Predicate, ...], ...] = ()
    #: Post-aggregation filters; each predicate's column names an output of
    #: the select list (a group column or an aggregate output name).
    having: tuple[Predicate, ...] = ()

    def __post_init__(self):
        if self.aggregates and not self.group_by:
            raise PlanError("aggregates require a group_by column")
        if self.group_by and not self.aggregates:
            raise PlanError("group_by requires at least one aggregate")
        if self.disjuncts:
            if self.predicates:
                raise PlanError(
                    "use either predicates (conjunction) or disjuncts (DNF)"
                )
            if len(self.disjuncts) < 2 or any(
                not group for group in self.disjuncts
            ):
                raise PlanError(
                    "disjuncts must hold at least two non-empty groups"
                )
        if isinstance(self.group_by, str):
            object.__setattr__(self, "group_by", (self.group_by,))
        for col, _desc in self.order_by:
            if col not in self.select:
                raise PlanError(
                    f"ORDER BY column {col!r} must appear in the select list"
                )
        if self.having:
            if not self.aggregates:
                raise PlanError("HAVING requires aggregation")
            for pred in self.having:
                if pred.column not in self.select:
                    raise PlanError(
                        f"HAVING column {pred.column!r} must appear in the "
                        "select list"
                    )
        if self.limit is not None and self.limit < 0:
            raise PlanError("limit must be non-negative")

    @property
    def group_columns(self) -> tuple[str, ...]:
        """Group-by columns as a (possibly empty) tuple."""
        return self.group_by or ()

    @property
    def encoding_map(self) -> dict[str, str]:
        return dict(self.encodings)

    def encoding_for(self, column: str) -> str | None:
        return self.encoding_map.get(column)

    @property
    def all_predicates(self) -> tuple[Predicate, ...]:
        """Every predicate anywhere in the WHERE clause (flattened)."""
        if self.disjuncts:
            return tuple(p for group in self.disjuncts for p in group)
        return self.predicates

    @property
    def predicate_columns(self) -> list[str]:
        seen: list[str] = []
        for p in self.all_predicates:
            if p.column not in seen:
                seen.append(p.column)
        return seen

    @property
    def value_columns(self) -> list[str]:
        """Columns whose values the query ultimately needs.

        For plain selection: the select list. For aggregation: the group-by
        column and the aggregate input columns.
        """
        if not self.aggregates:
            return list(self.select)
        cols = list(self.group_columns)
        for spec in self.aggregates:
            if spec.func != "count" and spec.column not in cols:
                cols.append(spec.column)
        return cols

    @property
    def all_columns(self) -> list[str]:
        """Every column the plan touches, predicates first."""
        cols = self.predicate_columns
        for c in self.value_columns:
            if c not in cols:
                cols.append(c)
        return cols


@dataclass(frozen=True)
class JoinQuery:
    """An FK-PK join between two projections (paper Section 4.3).

    Attributes:
        left: outer projection name (holds the foreign key).
        right: inner projection name (holds the primary key).
        left_key / right_key: join key columns.
        left_select / right_select: non-key output columns per side.
        left_predicates: conjunctive predicates on the outer side.
        left_strategy: "late" (positions + key column in, payload fetched by
            ordered positions after the join) or "early" (constructed tuples
            in, row-store style). The inner-table strategy is chosen at
            execution time.
    """

    left: str
    right: str
    left_key: str
    right_key: str
    left_select: tuple[str, ...]
    right_select: tuple[str, ...]
    left_predicates: tuple[Predicate, ...] = ()
    encodings: tuple[tuple[str, str], ...] = field(default=())
    left_strategy: str = "late"
    #: Optional aggregation over the join result: group-by columns (from
    #: either side, must appear in the corresponding select list) and
    #: aggregate specs over selected columns. The paper's rule: aggregated
    #: join results favour late materialization, because only summary tuples
    #: are ever constructed.
    group_by: str | tuple[str, ...] | None = None
    aggregates: tuple[AggSpec, ...] = ()

    def __post_init__(self):
        if self.aggregates and not self.group_by:
            raise PlanError("aggregates require a group_by column")
        if self.group_by and not self.aggregates:
            raise PlanError("group_by requires at least one aggregate")
        if isinstance(self.group_by, str):
            object.__setattr__(self, "group_by", (self.group_by,))
        selected = set(self.left_select) | set(self.right_select)
        for col in self.group_by or ():
            if col not in selected:
                raise PlanError(
                    f"join GROUP BY column {col!r} must be selected"
                )
        for spec in self.aggregates:
            if spec.column not in selected:
                raise PlanError(
                    f"join aggregate input {spec.column!r} must be selected"
                )

    @property
    def group_columns(self) -> tuple[str, ...]:
        """Group-by columns as a (possibly empty) tuple."""
        return self.group_by or ()

    @property
    def output_columns(self) -> tuple[str, ...]:
        """The join's output column names, in order."""
        if self.aggregates:
            return self.group_columns + tuple(
                s.output_name for s in self.aggregates
            )
        return self.left_select + self.right_select

    @property
    def encoding_map(self) -> dict[str, str]:
        return dict(self.encodings)
