"""The materialization strategies under study."""

from __future__ import annotations

from enum import Enum


class Strategy(Enum):
    """Tuple-construction strategies for selection/aggregation plans.

    * EM_PIPELINED — DS2 on the most selective column, then DS4 per further
      column: tuples grow one attribute at a time, later columns only touched
      at surviving positions.
    * EM_PARALLEL — a single SPC leaf scans every input column in full and
      constructs tuples immediately.
    * LM_PIPELINED — DS1 on the most selective column, positional filtering
      (DS3 + predicate) per further column, values extracted and merged only
      at the top.
    * LM_PARALLEL — independent DS1 scans per predicate, position AND, then
      DS3 extraction and a final merge.
    """

    EM_PIPELINED = "em-pipelined"
    EM_PARALLEL = "em-parallel"
    LM_PIPELINED = "lm-pipelined"
    LM_PARALLEL = "lm-parallel"

    @property
    def is_late(self) -> bool:
        return self in (Strategy.LM_PIPELINED, Strategy.LM_PARALLEL)

    @property
    def is_pipelined(self) -> bool:
        return self in (Strategy.EM_PIPELINED, Strategy.LM_PIPELINED)

    @classmethod
    def from_name(cls, name: str) -> "Strategy":
        name = name.strip().lower().replace("_", "-")
        for s in cls:
            if s.value == name:
                return s
        raise ValueError(f"unknown strategy {name!r}")


class LeftTableStrategy(Enum):
    """Outer-table input representations for joins.

    The paper (end of Section 4.3) does not plot these but states the rule:
    highly selective joins or aggregated results favour a LATE outer input
    (send positions + the key column, fetch payload columns afterwards by the
    ordered left positions); otherwise EARLY (EM-parallel: send constructed
    tuples) should be used.
    """

    EARLY = "early"
    LATE = "late"

    @classmethod
    def from_name(cls, name: str) -> "LeftTableStrategy":
        name = name.strip().lower()
        for s in cls:
            if s.value == name:
                return s
        raise ValueError(f"unknown left-table strategy {name!r}")


class RightTableStrategy(Enum):
    """Inner-table representations for the join experiment (Section 4.3)."""

    MATERIALIZED = "materialized"
    MULTI_COLUMN = "multi-column"
    SINGLE_COLUMN = "single-column"

    @classmethod
    def from_name(cls, name: str) -> "RightTableStrategy":
        name = name.strip().lower().replace("_", "-")
        for s in cls:
            if s.value == name:
                return s
        raise ValueError(f"unknown right-table strategy {name!r}")
