"""Physical plan construction and execution for the four strategies.

Each builder assembles the operator tree from the paper's Figures 7 and 8 and
runs it column-at-a-time. All builders end by draining the result (charging
the output iteration the paper includes in both model and measurements).
"""

from __future__ import annotations

import numpy as np

from ..errors import PlanError
from ..multicolumn import MiniColumn, MultiColumn
from ..operators import (
    AndOp,
    DS1Scan,
    DS2Scan,
    DS3Gather,
    DS4Scan,
    ExecutionContext,
    MergeOp,
    SPCScan,
    TupleSet,
    drain,
    gather_values,
)
from ..operators.aggregate import AggregateEM, AggregateLM
from ..operators.joins import (
    fetch_right_columns,
    join_materialized,
    join_multicolumn,
    join_single_column,
    merge_fetch_left,
)
from ..positions import RangePositions
from ..predicates import Predicate, combine_column_predicates
from ..storage.column_file import ColumnFile
from ..storage.projection import Projection
from .estimate import estimate_selectivity
from .logical import JoinQuery, SelectQuery
from .strategies import LeftTableStrategy, RightTableStrategy, Strategy


def _column_files(
    projection: Projection, query: SelectQuery | JoinQuery, columns: list[str]
) -> dict[str, ColumnFile]:
    enc = query.encoding_map
    return {
        col: projection.column(col).file(enc.get(col)) for col in columns
    }


def _grouped_predicates(predicates) -> dict[str, Predicate]:
    """One (possibly compound) predicate per column, in first-seen order."""
    by_column: dict[str, list[Predicate]] = {}
    for pred in predicates:
        by_column.setdefault(pred.column, []).append(pred)
    return {
        col: combine_column_predicates(preds) for col, preds in by_column.items()
    }


def _selectivity_order(
    files: dict[str, ColumnFile], col_preds: dict[str, Predicate]
) -> list[str]:
    """Predicate columns ordered most-selective-first (pipelined plans)."""
    return sorted(
        col_preds,
        key=lambda col: estimate_selectivity(files[col], col_preds[col]),
    )


def execute_select(
    ctx: ExecutionContext,
    projection: Projection,
    query: SelectQuery,
    strategy: Strategy,
) -> TupleSet:
    """Run *query* over *projection* with the given materialization strategy."""
    if projection.is_partitioned:
        # Range-partitioned projections fan out per partition after zone-map
        # pruning; the per-partition sub-plans run build_select below.
        from .partitioned import execute_partitioned_select

        return execute_partitioned_select(ctx, projection, query, strategy)
    result = build_select(ctx, projection, query, strategy)
    result = _apply_having(ctx, result, query)
    result = _order_and_limit(ctx, result, query)
    return drain(ctx, result)


def build_select(
    ctx: ExecutionContext,
    projection: Projection,
    query: SelectQuery,
    strategy: Strategy,
) -> TupleSet:
    """The operator-tree core of a selection: everything up to (but not
    including) HAVING, ORDER BY, LIMIT, and the output drain.

    Per-partition execution runs this once per surviving partition and
    applies the shared tail exactly once over the merged result, so output
    iteration is never double-charged.
    """
    files = _column_files(projection, query, query.all_columns)
    if query.disjuncts:
        # Disjunctive WHERE clauses run on the position-set union path:
        # "the positions matching a predicate can be derived by ORing
        # together the appropriate bitmaps" (paper §2.1.1). Late
        # materialization is the natural home for OR, whatever strategy the
        # caller named.
        return _lm_disjunction(ctx, projection, files, query)
    col_preds = _grouped_predicates(query.predicates)
    if strategy is Strategy.EM_PARALLEL:
        return _em_parallel(ctx, files, col_preds, query)
    if strategy is Strategy.EM_PIPELINED:
        return _em_pipelined(ctx, files, col_preds, query)
    if strategy is Strategy.LM_PARALLEL:
        return _lm_parallel(ctx, projection, files, col_preds, query)
    if strategy is Strategy.LM_PIPELINED:
        return _lm_pipelined(ctx, projection, files, col_preds, query)
    raise PlanError(f"unknown strategy {strategy}")  # pragma: no cover


def _apply_having(
    ctx: ExecutionContext, tuples: TupleSet, query: SelectQuery
) -> TupleSet:
    """Filter aggregated output rows (the HAVING clause)."""
    if not query.having:
        return tuples
    mask = np.ones(tuples.n_tuples, dtype=bool)
    for pred in query.having:
        mask &= pred.mask(tuples.column(pred.column))
    ctx.stats.tuple_iterations += tuples.n_tuples
    return tuples.filter(mask)


def _order_and_limit(
    ctx: ExecutionContext, tuples: TupleSet, query: SelectQuery
) -> TupleSet:
    """Apply ORDER BY (stable lexicographic sort) and LIMIT to the output."""
    if query.order_by:
        n = tuples.n_tuples
        keys = []
        # np.lexsort treats the last key as primary, so feed them reversed;
        # descending order negates the key.
        for col, descending in reversed(query.order_by):
            arr = tuples.column(col)
            keys.append(-arr if descending else arr)
        order = np.lexsort(keys)
        if n > 1:
            ctx.stats.function_calls += int(n * max(np.log2(n), 1.0))
        tuples = TupleSet(columns=tuples.columns, data=tuples.data[order])
    if query.limit is not None:
        tuples = TupleSet(
            columns=tuples.columns, data=tuples.data[: query.limit]
        )
    return tuples


# ---------------------------------------------------------------- EM plans


def _em_finish(ctx: ExecutionContext, tuples: TupleSet, query: SelectQuery) -> TupleSet:
    """Aggregate (if requested) and project an EM tuple stream."""
    if query.aggregates:
        agg = AggregateEM(ctx, query.group_by, list(query.aggregates))
        tuples = agg.execute(tuples)
    return tuples.select(list(query.select))


def _em_parallel(
    ctx: ExecutionContext,
    files: dict[str, ColumnFile],
    col_preds: dict[str, Predicate],
    query: SelectQuery,
) -> TupleSet:
    spc = SPCScan(ctx, files, list(col_preds.values()))
    return _em_finish(ctx, spc.execute(), query)


def _em_pipelined(
    ctx: ExecutionContext,
    files: dict[str, ColumnFile],
    col_preds: dict[str, Predicate],
    query: SelectQuery,
) -> TupleSet:
    ordered = _selectivity_order(files, col_preds)
    value_only = [c for c in query.value_columns if c not in col_preds]
    if ordered:
        first = ordered[0]
        tuples = DS2Scan(ctx, files[first], col_preds[first]).execute()
        rest = ordered[1:]
    else:
        if not value_only:
            raise PlanError("query touches no columns")
        first, *value_only = value_only
        tuples = DS2Scan(ctx, files[first], None).execute()
        rest = []
    for col in rest:
        tuples = DS4Scan(ctx, files[col], col_preds[col], tuples).execute()
    for col in value_only:
        tuples = DS4Scan(ctx, files[col], None, tuples).execute()
    return _em_finish(ctx, tuples, query)


# ---------------------------------------------------------------- LM plans


def _extract_columns(
    ctx: ExecutionContext,
    files: dict[str, ColumnFile],
    columns: list[str],
    positions,
    minicolumns: dict[str, MiniColumn],
) -> dict[str, np.ndarray]:
    """DS3-extract each column's values at the final position list."""
    out = {}
    for col in columns:
        result = DS3Gather(
            ctx, files[col], positions, minicolumn=minicolumns.get(col)
        ).execute()
        out[col] = result.values
    return out


def _rle_group_runs(
    ctx: ExecutionContext,
    column_file: ColumnFile,
    positions: np.ndarray,
    minicolumn: MiniColumn | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Map each position to its RLE run: returns (run_values, run_id per row).

    Lets the LM aggregator reduce per run instead of per row — operating
    directly on the compressed group column.
    """
    stats = ctx.stats
    run_value_parts: list[np.ndarray] = []
    id_parts: list[np.ndarray] = []
    cursor = 0
    run_base = 0  # runs appended so far across loaded blocks
    n = len(positions)
    for desc in column_file.descriptors:
        if cursor >= n:
            break
        hi = int(np.searchsorted(positions, desc.end_pos, side="left"))
        if hi <= cursor:
            stats.blocks_skipped += 1
            continue
        if minicolumn is not None and minicolumn.has_block(desc.index):
            payload = minicolumn.payload(desc.index)
            stats.block_iterations += 1
        else:
            payload = ctx.read_block(column_file, desc.index)
        values, starts, _lengths = ctx.run_table(column_file, desc, payload)
        chunk = positions[cursor:hi]
        local = np.searchsorted(starts, chunk, side="right") - 1
        run_value_parts.append(values)
        id_parts.append(local + run_base)
        run_base += len(values)
        cursor = hi
    if not run_value_parts:
        return (
            np.empty(0, dtype=column_file.dtype),
            np.empty(0, dtype=np.int64),
        )
    return np.concatenate(run_value_parts), np.concatenate(id_parts)


def _lm_finish(
    ctx: ExecutionContext,
    files: dict[str, ColumnFile],
    query: SelectQuery,
    positions,
    minicolumns: dict[str, MiniColumn],
) -> TupleSet:
    """Shared tail of LM plans: extract values, aggregate or merge."""
    if query.aggregates:
        pos_array = positions.to_array()
        value_cols = [
            spec.column
            for spec in query.aggregates
            if spec.func != "count"
        ]
        columns = {}
        for col in dict.fromkeys(value_cols):
            columns[col] = gather_values(
                ctx, files[col], pos_array, minicolumn=minicolumns.get(col)
            )
            ctx.stats.column_iterations += len(pos_array)
        group_cols = list(query.group_columns)
        agg = AggregateLM(ctx, group_cols, list(query.aggregates))
        single = group_cols[0] if len(group_cols) == 1 else None
        plain_funcs = all(
            s.func != "count_distinct" for s in query.aggregates
        )
        if (
            single is not None
            and files[single].encoding.supports_runs
            and ctx.compressed
            and plain_funcs
        ):
            run_values, run_ids = _rle_group_runs(
                ctx, files[single], pos_array, minicolumns.get(single)
            )
            tuples = agg.execute_runs(run_values, run_ids, columns)
        elif (
            single is not None
            and files[single].encoding.name == "dictionary"
            and ctx.compressed
            and plain_funcs
        ):
            # The group column stays in the code domain: the aggregator
            # reduces over dense code ids (a per-block code histogram) and
            # only the distinct arrays are ever widened.
            from ..compressed.kernels import dictionary_group_codes

            code_values, code_ids = dictionary_group_codes(
                ctx, files[single], pos_array, minicolumns.get(single)
            )
            tuples = agg.execute_runs(code_values, code_ids, columns)
        else:
            if (
                single is not None
                and ctx.compressed
                and not plain_funcs
                and (
                    files[single].encoding.supports_runs
                    or files[single].encoding.name == "dictionary"
                )
            ):
                # A kernel-capable group column forced to the row path
                # (count_distinct needs per-row values): that expansion is
                # a morph.
                ctx.stats.morphs += 1
            groups = {}
            for col in group_cols:
                groups[col] = gather_values(
                    ctx,
                    files[col],
                    pos_array,
                    minicolumn=minicolumns.get(col),
                )
                ctx.stats.column_iterations += len(pos_array)
            tuples = agg.execute(groups, columns)
        return tuples.select(list(query.select))
    values = _extract_columns(
        ctx, files, query.value_columns, positions, minicolumns
    )
    tuples = MergeOp(ctx).execute(values)
    return tuples.select(list(query.select))


def _lm_parallel(
    ctx: ExecutionContext,
    projection: Projection,
    files: dict[str, ColumnFile],
    col_preds: dict[str, Predicate],
    query: SelectQuery,
) -> TupleSet:
    minicolumns: dict[str, MiniColumn] = {}
    # Independent DS1 leaves — one per predicate column, no data
    # dependencies (paper Figure 5) — run concurrently when the context has
    # a scan scheduler; results are consumed in plan order either way.
    items = list(col_preds.items())
    results = ctx.map_leaves(
        [
            (
                lambda leaf_ctx, col=col, pred=pred: DS1Scan(
                    leaf_ctx,
                    files[col],
                    pred,
                    index=projection.column(col).index,
                ).execute()
            )
            for col, pred in items
        ]
    )
    position_sets = []
    for (col, _pred), result in zip(items, results):
        position_sets.append(result.positions)
        if result.minicolumn is not None:
            minicolumns[col] = result.minicolumn
    if position_sets:
        positions = AndOp(ctx).execute_positions(position_sets)
    else:
        positions = RangePositions(0, projection.n_rows)
    return _lm_finish(ctx, files, query, positions, minicolumns)


def _lm_disjunction(
    ctx: ExecutionContext,
    projection: Projection,
    files: dict[str, ColumnFile],
    query: SelectQuery,
) -> TupleSet:
    """OR of conjunction groups: per-group AND, then a position-set union."""
    from ..positions import union_all

    minicolumns: dict[str, MiniColumn] = {}
    group_sets = []
    for group in query.disjuncts:
        col_preds = _grouped_predicates(group)
        sets = []
        for col, pred in col_preds.items():
            result = DS1Scan(
                ctx, files[col], pred, index=projection.column(col).index
            ).execute()
            sets.append(result.positions)
            if result.minicolumn is not None:
                minicolumns.setdefault(col, result.minicolumn)
        group_sets.append(
            AndOp(ctx).execute_positions(sets) if len(sets) > 1 else sets[0]
        )
    from ..operators.and_op import and_groups

    ctx.stats.column_iterations += sum(and_groups(s) for s in group_sets)
    ctx.stats.function_calls += max(
        (and_groups(s) for s in group_sets), default=0
    )
    positions = union_all(group_sets)
    return _lm_finish(ctx, files, query, positions, minicolumns)


def _lm_pipelined(
    ctx: ExecutionContext,
    projection: Projection,
    files: dict[str, ColumnFile],
    col_preds: dict[str, Predicate],
    query: SelectQuery,
) -> TupleSet:
    ordered = _selectivity_order(files, col_preds)
    minicolumns: dict[str, MiniColumn] = {}
    if not ordered:
        positions = RangePositions(0, projection.n_rows)
    else:
        first = ordered[0]
        result = DS1Scan(
            ctx,
            files[first],
            col_preds[first],
            index=projection.column(first).index,
        ).execute()
        if result.minicolumn is not None:
            minicolumns[first] = result.minicolumn
        positions = result.positions
        for col in ordered[1:]:
            # DS3 with a predicate: extract only at surviving positions and
            # filter — this is where bit-vector columns are rejected.
            step = DS3Gather(
                ctx, files[col], positions, predicate=col_preds[col]
            ).execute()
            positions = step.positions
    return _lm_finish(ctx, files, query, positions, minicolumns)


# ---------------------------------------------------------------- Join plans


def _pin_multicolumn(
    ctx: ExecutionContext, files: dict[str, ColumnFile], columns: list[str]
) -> MultiColumn:
    """Read the given columns fully, pinning payloads into a multi-column."""
    n_rows = max(files[c].n_values for c in columns)
    mc = MultiColumn(start=0, stop=n_rows, descriptor=RangePositions(0, n_rows))
    for col in columns:
        cf = files[col]
        mini = MiniColumn(cf)
        for desc in cf.descriptors:
            mini.pin(desc, ctx.read_block(cf, desc.index))
        mc.attach(mini)
    return mc


def execute_join(
    ctx: ExecutionContext,
    left_projection: Projection,
    right_projection: Projection,
    query: JoinQuery,
    right_strategy: RightTableStrategy,
) -> TupleSet:
    """Run the FK-PK join with the chosen inner-table materialization."""
    left_cols = [query.left_key] + [
        c for c in query.left_select if c != query.left_key
    ]
    for pred in query.left_predicates:
        if pred.column not in left_cols:
            left_cols.append(pred.column)
    right_cols = [query.right_key] + [
        c for c in query.right_select if c != query.right_key
    ]
    left_files = _column_files(left_projection, query, left_cols)
    right_files = _column_files(right_projection, query, right_cols)
    col_preds = _grouped_predicates(query.left_predicates)
    left_strategy = LeftTableStrategy.from_name(query.left_strategy)

    left_tuples = None
    if left_strategy is LeftTableStrategy.EARLY:
        # EM outer input: construct the left tuples up front; the join then
        # carries whole rows and "positions" are just row ordinals.
        left_tuples = SPCScan(
            ctx, left_files, list(col_preds.values())
        ).execute()
        left_keys = left_tuples.column(query.left_key)
        left_positions = np.arange(left_tuples.n_tuples, dtype=np.int64)
    # Outer side (LM): filter on the left predicates, keep positions + keys.
    elif col_preds:
        sets = []
        minis: dict[str, MiniColumn] = {}
        for col, pred in col_preds.items():
            res = DS1Scan(
                ctx,
                left_files[col],
                pred,
                index=left_projection.column(col).index,
            ).execute()
            sets.append(res.positions)
            if res.minicolumn is not None:
                minis[col] = res.minicolumn
        left_positions_set = (
            AndOp(ctx).execute_positions(sets) if len(sets) > 1 else sets[0]
        )
        left_positions = left_positions_set.to_array()
        left_keys = gather_values(
            ctx,
            left_files[query.left_key],
            left_positions,
            minicolumn=minis.get(query.left_key),
        )
    else:
        left_positions = np.arange(left_projection.n_rows, dtype=np.int64)
        left_keys = gather_values(
            ctx, left_files[query.left_key], left_positions
        )

    right_value_cols = list(query.right_select)
    if right_strategy is RightTableStrategy.MATERIALIZED:
        spc = SPCScan(ctx, right_files, [])
        right_tuples = spc.execute()
        out_positions, matched = join_materialized(
            ctx, left_keys, left_positions, right_tuples, query.right_key
        )
        right_values = {c: matched.column(c) for c in right_value_cols}
    elif right_strategy is RightTableStrategy.MULTI_COLUMN:
        mc = _pin_multicolumn(ctx, right_files, right_cols)
        out_positions, extracted = join_multicolumn(
            ctx,
            left_keys,
            left_positions,
            mc,
            right_files,
            query.right_key,
            right_value_cols,
        )
        right_values = {c: extracted[c] for c in right_value_cols}
    elif right_strategy is RightTableStrategy.SINGLE_COLUMN:
        full = RangePositions(0, right_projection.n_rows)
        key_scan = DS3Gather(ctx, right_files[query.right_key], full).execute()
        join_out = join_single_column(
            ctx, left_keys, left_positions, key_scan.values
        )
        out_positions = join_out.left_positions
        right_values = fetch_right_columns(
            ctx, join_out, right_files, right_value_cols
        )
    else:  # pragma: no cover - enum is closed
        raise PlanError(f"unknown right-table strategy {right_strategy}")

    if left_tuples is not None:
        # EM outer input: the surviving rows already carry every left value.
        rows = left_tuples.data[out_positions]
        ctx.stats.tuple_iterations += len(out_positions)
        left_values = {
            c: rows[:, left_tuples.column_index(c)] for c in query.left_select
        }
    else:
        left_values = merge_fetch_left(
            ctx, out_positions, left_files, list(query.left_select)
        )
    stitched = {c: left_values[c] for c in query.left_select}
    stitched.update({c: right_values[c] for c in query.right_select})
    if query.aggregates:
        # Vector aggregation over the joined columns: only summary tuples
        # are constructed — the paper's aggregated-join rule in action.
        group_cols = list(query.group_columns)
        agg = AggregateLM(ctx, group_cols, list(query.aggregates))
        groups = {c: stitched[c] for c in group_cols}
        columns = {
            spec.column: stitched[spec.column]
            for spec in query.aggregates
            if spec.func != "count"
        }
        tuples = agg.execute(groups, columns)
        return drain(ctx, tuples.select(list(query.output_columns)))
    tuples = MergeOp(ctx).execute(stitched)
    return drain(ctx, tuples)
