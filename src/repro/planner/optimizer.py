"""Model-driven strategy selection.

The paper's conclusion proposes using the analytical model inside a query
optimizer to pick a materialization strategy. This module does exactly that:
predict every applicable strategy's cost and take the argmin. Strategies a
plan cannot legally use (LM-pipelined over bit-vector predicate columns) are
excluded the same way the experiments exclude them.
"""

from __future__ import annotations

from ..errors import UnsupportedOperationError
from ..storage.projection import Projection


def _applicable_strategies(projection: Projection, query) -> list:
    from .strategies import Strategy

    strategies = list(Strategy)
    pred_cols = query.predicate_columns
    if len(pred_cols) > 1:
        enc = query.encoding_map
        for col in pred_cols:
            # physical_column: a partitioned parent has schema-only columns;
            # any partition answers encoding questions for all of them.
            cf = projection.physical_column(col).file(enc.get(col))
            if not cf.encoding.supports_position_filtering:
                strategies.remove(Strategy.LM_PIPELINED)
                break
    return strategies


def choose_strategy(
    projection: Projection,
    query,
    constants=None,
    resident: float = 0.0,
):
    """Pick the strategy the model predicts cheapest for *query*.

    Returns:
        (strategy, predictions): the winner and the per-strategy
        :class:`~repro.model.predictor.PlanPrediction` map used to choose.
    """
    from ..model.constants import PAPER_CONSTANTS
    from ..model.predictor import predict_select

    constants = constants or PAPER_CONSTANTS
    predictions = {}
    for strategy in _applicable_strategies(projection, query):
        try:
            predictions[strategy] = predict_select(
                projection, query, strategy, constants=constants, resident=resident
            )
        except UnsupportedOperationError:  # pragma: no cover - defensive
            continue
    best = min(predictions, key=lambda s: predictions[s].total_ms)
    return best, predictions
