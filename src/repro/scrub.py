"""Offline storage scrubber: checksum + structural verification.

Production column stores do not wait for a query to trip over bit rot — a
background *scrubber* walks the stored bytes and reports damage so operators
can repair (re-replicate, re-merge, restore) before the data is needed.
``Database.scrub()`` / ``repro scrub`` is that path here: it walks every
catalog projection, partition, column file and block **directly on disk**
(bypassing the buffer pool and any fault injector — the scrubber verifies
what is actually stored, not what a cache or schedule says), checking

* the column-file header opens and parses (magic, JSON, schema names);
* structural invariants of the descriptor table: block positions start at
  zero, chain contiguously, and sum to the header's value count; payload
  extents lie inside the physical file;
* every block payload's length and CRC32 checksum;
* optionally (``deep=True``) that each payload *decodes* to exactly the
  descriptor's value count and respects its min/max bounds — catching
  damage that checksums alone cannot see (e.g. a stale-but-valid block);
* partitioned parents: every child opens, and child row counts sum to the
  parent's.

The result is a machine-readable :class:`ScrubReport` naming each corrupt
file and block, so the repair-detection path is independent of query
traffic.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from .errors import ReproError, StorageError
from .storage.column_file import ColumnFile


@dataclass(frozen=True)
class ScrubIssue:
    """One verified defect: where it is and what is wrong."""

    projection: str
    file: str
    error: str
    partition: str | None = None
    column: str | None = None
    encoding: str | None = None
    block: int | None = None

    def to_json(self) -> dict:
        return {
            "projection": self.projection,
            "partition": self.partition,
            "column": self.column,
            "encoding": self.encoding,
            "file": self.file,
            "block": self.block,
            "error": self.error,
        }


@dataclass
class ScrubReport:
    """Outcome of one scrub pass over a catalog."""

    projections_scanned: int = 0
    files_scanned: int = 0
    blocks_scanned: int = 0
    issues: list[ScrubIssue] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.issues

    def to_json(self) -> dict:
        return {
            "clean": self.clean,
            "projections_scanned": self.projections_scanned,
            "files_scanned": self.files_scanned,
            "blocks_scanned": self.blocks_scanned,
            "issues": [issue.to_json() for issue in self.issues],
        }


def scrub_catalog(catalog, deep: bool = False) -> ScrubReport:
    """Verify every projection/partition/column file/block under *catalog*.

    Never raises on damaged data — every defect becomes a
    :class:`ScrubIssue` and the walk continues, so one corrupt block cannot
    hide another.
    """
    report = ScrubReport()
    for name in catalog.names():
        projection = catalog.get(name)
        report.projections_scanned += 1
        if projection.is_partitioned:
            _scrub_partitioned(projection, report, deep)
        else:
            _scrub_columns(projection, report, deep, partition=None)
    return report


def _scrub_partitioned(projection, report: ScrubReport, deep: bool) -> None:
    child_rows = 0
    for part in projection.partitions:
        try:
            child = part.open()
        except ReproError as exc:
            report.issues.append(
                ScrubIssue(
                    projection=projection.name,
                    partition=part.name,
                    file=str(part.directory / "projection.json"),
                    error=str(exc),
                )
            )
            continue
        child_rows += child.n_rows
        _scrub_columns(child, report, deep, partition=part.name,
                       parent=projection)
    if child_rows != projection.n_rows and not report.issues:
        report.issues.append(
            ScrubIssue(
                projection=projection.name,
                file=str(projection.directory / "projection.json"),
                error=(
                    f"partition row counts sum to {child_rows}, parent "
                    f"metadata says {projection.n_rows}"
                ),
            )
        )


def _scrub_columns(
    projection, report: ScrubReport, deep: bool,
    partition: str | None, parent=None
) -> None:
    owner = parent.name if parent is not None else projection.name
    for col in projection.column_names:
        pc = projection.column(col)
        for encoding, path in sorted(pc.files.items()):
            report.files_scanned += 1
            where = dict(
                projection=owner, partition=partition,
                column=col, encoding=encoding, file=str(path),
            )
            try:
                cf = ColumnFile.open(path)
            except (ReproError, OSError, ValueError, KeyError) as exc:
                report.issues.append(
                    ScrubIssue(error=f"cannot open column file: {exc}", **where)
                )
                continue
            _scrub_structure(cf, report, where)
            _scrub_blocks(cf, report, where, deep)


def _scrub_structure(cf: ColumnFile, report: ScrubReport, where: dict) -> None:
    """Descriptor-table invariants that need no payload bytes."""
    try:
        file_size = os.path.getsize(cf.path)
    except OSError as exc:  # pragma: no cover - file vanished mid-scrub
        report.issues.append(ScrubIssue(error=str(exc), **where))
        return
    expected_pos = 0
    covered = 0
    for d in cf.descriptors:
        if d.start_pos != expected_pos:
            report.issues.append(
                ScrubIssue(
                    block=d.index,
                    error=(
                        f"block positions not contiguous: block {d.index} "
                        f"starts at {d.start_pos}, expected {expected_pos}"
                    ),
                    **where,
                )
            )
        if d.offset + d.nbytes > file_size:
            report.issues.append(
                ScrubIssue(
                    block=d.index,
                    error=(
                        f"block {d.index} extends to byte "
                        f"{d.offset + d.nbytes} but the file holds only "
                        f"{file_size}"
                    ),
                    **where,
                )
            )
        expected_pos = d.end_pos
        covered += d.n_values
    if covered != cf.n_values:
        report.issues.append(
            ScrubIssue(
                error=(
                    f"descriptors cover {covered} values, header says "
                    f"{cf.n_values}"
                ),
                **where,
            )
        )


def _scrub_blocks(
    cf: ColumnFile, report: ScrubReport, where: dict, deep: bool
) -> None:
    """Length + checksum per block; value-level checks when *deep*."""
    for d in cf.descriptors:
        report.blocks_scanned += 1
        try:
            payload = cf.read_payload(d.index)
        except (StorageError, OSError) as exc:
            report.issues.append(
                ScrubIssue(block=d.index, error=str(exc), **where)
            )
            continue
        if not deep:
            continue
        try:
            values = cf.encoding.decode(payload, d, cf.dtype)
        except ReproError as exc:
            report.issues.append(
                ScrubIssue(
                    block=d.index, error=f"undecodable payload: {exc}",
                    **where,
                )
            )
            continue
        if len(values) != d.n_values:
            report.issues.append(
                ScrubIssue(
                    block=d.index,
                    error=(
                        f"block {d.index} decodes to {len(values)} values, "
                        f"descriptor says {d.n_values}"
                    ),
                    **where,
                )
            )
        elif len(values) and (
            values.min() < d.min_value or values.max() > d.max_value
        ):
            report.issues.append(
                ScrubIssue(
                    block=d.index,
                    error=(
                        f"block {d.index} values "
                        f"[{values.min()}, {values.max()}] escape the "
                        f"descriptor bounds [{d.min_value}, {d.max_value}]"
                    ),
                    **where,
                )
            )
