"""Offline storage scrubber: checksum + structural verification.

Production column stores do not wait for a query to trip over bit rot — a
background *scrubber* walks the stored bytes and reports damage so operators
can repair (re-replicate, re-merge, restore) before the data is needed.
``Database.scrub()`` / ``repro scrub`` is that path here: it walks every
catalog projection, partition, column file and block **directly on disk**
(bypassing the buffer pool and any fault injector — the scrubber verifies
what is actually stored, not what a cache or schedule says), checking

* the column-file header opens and parses (magic, JSON, schema names);
* structural invariants of the descriptor table: block positions start at
  zero, chain contiguously, and sum to the header's value count; payload
  extents lie inside the physical file;
* every block payload's length and CRC32 checksum;
* optionally (``deep=True``) that each payload *decodes* to exactly the
  descriptor's value count and respects its min/max bounds — catching
  damage that checksums alone cannot see (e.g. a stale-but-valid block);
* partitioned parents: every child opens, and child row counts sum to the
  parent's.

The result is a machine-readable :class:`ScrubReport` naming each corrupt
file and block, so the repair-detection path is independent of query
traffic.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from .errors import ReproError, StorageError
from .storage.column_file import ColumnFile


@dataclass(frozen=True)
class ScrubIssue:
    """One verified defect: where it is and what is wrong."""

    projection: str
    file: str
    error: str
    partition: str | None = None
    column: str | None = None
    encoding: str | None = None
    block: int | None = None
    line: int | None = None

    def to_json(self) -> dict:
        return {
            "projection": self.projection,
            "partition": self.partition,
            "column": self.column,
            "encoding": self.encoding,
            "file": self.file,
            "block": self.block,
            "line": self.line,
            "error": self.error,
        }


@dataclass
class ScrubReport:
    """Outcome of one scrub pass over a catalog."""

    projections_scanned: int = 0
    files_scanned: int = 0
    blocks_scanned: int = 0
    issues: list[ScrubIssue] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.issues

    def to_json(self) -> dict:
        return {
            "clean": self.clean,
            "projections_scanned": self.projections_scanned,
            "files_scanned": self.files_scanned,
            "blocks_scanned": self.blocks_scanned,
            "issues": [issue.to_json() for issue in self.issues],
        }


def scrub_catalog(catalog, deep: bool = False) -> ScrubReport:
    """Verify every projection/partition/column file/block under *catalog*.

    Never raises on damaged data — every defect becomes a
    :class:`ScrubIssue` and the walk continues, so one corrupt block cannot
    hide another.
    """
    report = ScrubReport()
    for name in catalog.names():
        projection = catalog.get(name)
        report.projections_scanned += 1
        if projection.is_partitioned:
            _scrub_partitioned(projection, report, deep)
        else:
            _scrub_columns(projection, report, deep, partition=None)
    _scrub_write_path(catalog, report)
    return report


#: Synthetic projection name for issues in the catalog's shared write-path
#: files (manifest, staging debris) rather than any one projection.
CATALOG_SCOPE = "(catalog)"


def _scrub_write_path(catalog, report: ScrubReport) -> None:
    """Verify the write path: manifest, staging debris, and WAL segments.

    The manifest must parse and every projection it names must exist;
    ``tmp-*`` staging directories (and a staged manifest copy) are
    uncommitted debris a crash left behind; each per-table WAL must be
    line-by-line valid JSON with known record shapes — only its *final*
    line may be torn (that case is recoverable and reported as such). A
    ``wal_applied`` marker exceeding the WAL's record count would make
    recovery discard the whole log, so it is flagged too.
    """
    root = getattr(catalog, "root", None)
    if root is None:  # what-if views have no write path
        return
    _scrub_manifest(catalog, report)
    for path in sorted(root.glob("tmp-*")) + sorted(
        root.glob("manifest.json.tmp")
    ):
        report.issues.append(
            ScrubIssue(
                projection=CATALOG_SCOPE,
                file=str(path),
                error=(
                    "orphaned staging path left by an interrupted commit "
                    "(reopening the database garbage-collects it)"
                ),
            )
        )
    wal_dir = root / "_wal"
    if wal_dir.is_dir():
        for path in sorted(wal_dir.glob("*.wal")):
            _scrub_wal(catalog, path, report)


def _scrub_manifest(catalog, report: ScrubReport) -> None:
    import json

    from .storage.projection import META_FILE

    path = catalog.root / "manifest.json"
    report.files_scanned += 1
    if not path.exists():
        report.issues.append(
            ScrubIssue(
                projection=CATALOG_SCOPE,
                file=str(path),
                error="catalog manifest missing",
            )
        )
        return
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        report.issues.append(
            ScrubIssue(
                projection=CATALOG_SCOPE,
                file=str(path),
                error=f"corrupt catalog manifest: {exc}",
            )
        )
        return
    if not isinstance(data, dict) or not isinstance(
        data.get("projections"), dict
    ):
        report.issues.append(
            ScrubIssue(
                projection=CATALOG_SCOPE,
                file=str(path),
                error="corrupt catalog manifest: missing projections map",
            )
        )
        return
    if not isinstance(data.get("generation"), int) or data["generation"] < 0:
        report.issues.append(
            ScrubIssue(
                projection=CATALOG_SCOPE,
                file=str(path),
                error=(
                    "corrupt catalog manifest: generation is "
                    f"{data.get('generation')!r}"
                ),
            )
        )
    for name, dirname in sorted(data["projections"].items()):
        meta = catalog.root / str(dirname) / META_FILE
        if not meta.exists():
            report.issues.append(
                ScrubIssue(
                    projection=name,
                    file=str(meta),
                    error=(
                        f"manifest names projection {name!r} at "
                        f"{dirname!r} but its metadata is missing"
                    ),
                )
            )
    for table, count in sorted(data.get("wal_applied", {}).items()):
        wal = catalog.root / "_wal" / f"{table}.wal"
        if not isinstance(count, int) or count < 0:
            report.issues.append(
                ScrubIssue(
                    projection=table,
                    file=str(path),
                    error=(
                        f"corrupt wal_applied marker for {table!r}: "
                        f"{count!r}"
                    ),
                )
            )
        elif count and not wal.exists():
            # Legal mid-recovery state (crash between WAL unlink and the
            # marker-clearing commit) — reported so operators see it, and
            # self-healing on the next open.
            report.issues.append(
                ScrubIssue(
                    projection=table,
                    file=str(wal),
                    error=(
                        f"wal_applied marker is {count} but the WAL is "
                        "gone (recoverable: the next open clears it)"
                    ),
                )
            )


_WAL_OPS = (None, "insert", "delete", "update")


def _scrub_wal(catalog, path, report: ScrubReport) -> None:
    import json

    report.files_scanned += 1
    lines = []
    with open(path, encoding="utf-8") as f:
        for raw in f:
            raw = raw.strip()
            if raw:
                lines.append(raw)
    records = 0
    for i, line in enumerate(lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if i == len(lines) - 1:
                report.issues.append(
                    ScrubIssue(
                        projection=path.stem,
                        file=str(path),
                        line=i + 1,
                        error=(
                            "torn final WAL line (recoverable: dropped on "
                            f"the next open): {exc}"
                        ),
                    )
                )
            else:
                report.issues.append(
                    ScrubIssue(
                        projection=path.stem,
                        file=str(path),
                        line=i + 1,
                        error=(
                            f"corrupt WAL record (line {i + 1} of "
                            f"{len(lines)}): {exc}"
                        ),
                    )
                )
            continue
        records += 1
        op = record.get("_op") if isinstance(record, dict) else "?"
        if op not in _WAL_OPS:
            report.issues.append(
                ScrubIssue(
                    projection=path.stem,
                    file=str(path),
                    line=i + 1,
                    error=f"unknown WAL record op {op!r}",
                )
            )
    marker = getattr(catalog, "wal_applied", {}).get(path.stem, 0)
    if marker > records:
        report.issues.append(
            ScrubIssue(
                projection=path.stem,
                file=str(path),
                error=(
                    f"wal_applied marker is {marker} but the WAL holds "
                    f"only {records} records"
                ),
            )
        )


def _scrub_partitioned(projection, report: ScrubReport, deep: bool) -> None:
    child_rows = 0
    for part in projection.partitions:
        try:
            child = part.open()
        except ReproError as exc:
            report.issues.append(
                ScrubIssue(
                    projection=projection.name,
                    partition=part.name,
                    file=str(part.directory / "projection.json"),
                    error=str(exc),
                )
            )
            continue
        child_rows += child.n_rows
        _scrub_columns(child, report, deep, partition=part.name,
                       parent=projection)
        if deep:
            try:
                zone_problems = part.verify_zone_maps()
            except ReproError as exc:
                zone_problems = [f"cannot verify zone maps: {exc}"]
            for problem in zone_problems:
                report.issues.append(
                    ScrubIssue(
                        projection=projection.name,
                        partition=part.name,
                        file=str(part.directory / "projection.json"),
                        error=problem,
                    )
                )
    if child_rows != projection.n_rows and not report.issues:
        report.issues.append(
            ScrubIssue(
                projection=projection.name,
                file=str(projection.directory / "projection.json"),
                error=(
                    f"partition row counts sum to {child_rows}, parent "
                    f"metadata says {projection.n_rows}"
                ),
            )
        )


def _scrub_columns(
    projection, report: ScrubReport, deep: bool,
    partition: str | None, parent=None
) -> None:
    owner = parent.name if parent is not None else projection.name
    for col in projection.column_names:
        pc = projection.column(col)
        for encoding, path in sorted(pc.files.items()):
            report.files_scanned += 1
            where = dict(
                projection=owner, partition=partition,
                column=col, encoding=encoding, file=str(path),
            )
            try:
                cf = ColumnFile.open(path)
            except (ReproError, OSError, ValueError, KeyError) as exc:
                report.issues.append(
                    ScrubIssue(error=f"cannot open column file: {exc}", **where)
                )
                continue
            _scrub_structure(cf, report, where)
            _scrub_blocks(cf, report, where, deep)


def _scrub_structure(cf: ColumnFile, report: ScrubReport, where: dict) -> None:
    """Descriptor-table invariants that need no payload bytes."""
    try:
        file_size = os.path.getsize(cf.path)
    except OSError as exc:  # pragma: no cover - file vanished mid-scrub
        report.issues.append(ScrubIssue(error=str(exc), **where))
        return
    expected_pos = 0
    covered = 0
    for d in cf.descriptors:
        if d.start_pos != expected_pos:
            report.issues.append(
                ScrubIssue(
                    block=d.index,
                    error=(
                        f"block positions not contiguous: block {d.index} "
                        f"starts at {d.start_pos}, expected {expected_pos}"
                    ),
                    **where,
                )
            )
        if d.offset + d.nbytes > file_size:
            report.issues.append(
                ScrubIssue(
                    block=d.index,
                    error=(
                        f"block {d.index} extends to byte "
                        f"{d.offset + d.nbytes} but the file holds only "
                        f"{file_size}"
                    ),
                    **where,
                )
            )
        expected_pos = d.end_pos
        covered += d.n_values
    if covered != cf.n_values:
        report.issues.append(
            ScrubIssue(
                error=(
                    f"descriptors cover {covered} values, header says "
                    f"{cf.n_values}"
                ),
                **where,
            )
        )


def _scrub_blocks(
    cf: ColumnFile, report: ScrubReport, where: dict, deep: bool
) -> None:
    """Length + checksum per block; value-level checks when *deep*."""
    for d in cf.descriptors:
        report.blocks_scanned += 1
        try:
            payload = cf.read_payload(d.index)
        except (StorageError, OSError) as exc:
            report.issues.append(
                ScrubIssue(block=d.index, error=str(exc), **where)
            )
            continue
        if not deep:
            continue
        try:
            values = cf.encoding.decode(payload, d, cf.dtype)
        except ReproError as exc:
            report.issues.append(
                ScrubIssue(
                    block=d.index, error=f"undecodable payload: {exc}",
                    **where,
                )
            )
            continue
        if len(values) != d.n_values:
            report.issues.append(
                ScrubIssue(
                    block=d.index,
                    error=(
                        f"block {d.index} decodes to {len(values)} values, "
                        f"descriptor says {d.n_values}"
                    ),
                    **where,
                )
            )
        elif len(values) and (
            values.min() < d.min_value or values.max() > d.max_value
        ):
            report.issues.append(
                ScrubIssue(
                    block=d.index,
                    error=(
                        f"block {d.index} values "
                        f"[{values.min()}, {values.max()}] escape the "
                        f"descriptor bounds [{d.min_value}, {d.max_value}]"
                    ),
                    **where,
                )
            )
