"""Deterministic TPC-H-style data generation (the paper's workload).

The paper evaluates on TPC-H scale 10 (60 M lineitem rows). This package
generates the same *structure* at configurable scale: the lineitem projection
(RETURNFLAG, SHIPDATE, LINENUM, QUANTITY) with the paper's compound sort
order and encodings, and the orders/customer pair for the join experiment.
What matters for the experiments is preserved: LINENUM's 7-value domain,
RETURNFLAG's 3-value domain, SHIPDATE's ~7-year day range, the sort-induced
run structure that makes RLE effective, and the FK-PK relationship with
|orders| = 10 x |customer|.
"""

from .generator import (
    CustomerData,
    LineitemData,
    OrdersData,
    SHIPDATE_MAX,
    SHIPDATE_MIN,
    generate_customer,
    generate_lineitem,
    generate_orders,
)
from .loader import load_tpch, lineitem_rows_for_scale

__all__ = [
    "LineitemData",
    "OrdersData",
    "CustomerData",
    "SHIPDATE_MIN",
    "SHIPDATE_MAX",
    "generate_lineitem",
    "generate_orders",
    "generate_customer",
    "load_tpch",
    "lineitem_rows_for_scale",
]
