"""Column generators for the lineitem / orders / customer workload."""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

import numpy as np

from ..dtypes import date_to_int

SHIPDATE_MIN = date_to_int(date(1992, 1, 2))
SHIPDATE_MAX = date_to_int(date(1998, 12, 1))
"""TPC-H shipdate domain: 1992-01-02 .. 1998-12-01 (~2526 distinct days)."""

RETURNFLAG_DICTIONARY = ("A", "N", "R")
# Roughly TPC-H's observed distribution: ~25% A, ~50% N, ~25% R.
_RETURNFLAG_WEIGHTS = (0.25, 0.50, 0.25)

LINENUM_DOMAIN = np.arange(1, 8)
# TPC-H orders have 1-7 lineitems uniformly, so linenumber=k appears in all
# orders with >= k items: a strictly decreasing frequency for larger k.
_LINENUM_WEIGHTS = (8 - LINENUM_DOMAIN) / float((8 - LINENUM_DOMAIN).sum())

NATION_COUNT = 25


@dataclass
class LineitemData:
    """Generated lineitem projection columns (unsorted)."""

    returnflag: np.ndarray  # uint8 dictionary codes into RETURNFLAG_DICTIONARY
    shipdate: np.ndarray  # int32 days since epoch
    linenum: np.ndarray  # int32, domain 1..7
    quantity: np.ndarray  # int32, domain 1..50

    @property
    def n_rows(self) -> int:
        return len(self.shipdate)

    def as_columns(self) -> dict[str, np.ndarray]:
        return {
            "returnflag": self.returnflag,
            "shipdate": self.shipdate,
            "linenum": self.linenum,
            "quantity": self.quantity,
        }


@dataclass
class OrdersData:
    """Generated orders columns (sorted by shipdate, custkey scattered)."""

    shipdate: np.ndarray  # int32 days since epoch
    custkey: np.ndarray  # int64 FK into customer

    @property
    def n_rows(self) -> int:
        return len(self.custkey)

    def as_columns(self) -> dict[str, np.ndarray]:
        return {"shipdate": self.shipdate, "custkey": self.custkey}


@dataclass
class CustomerData:
    """Generated customer columns (custkey is a dense sorted PK)."""

    custkey: np.ndarray  # int64 PK, 1..n
    nationcode: np.ndarray  # int32, 0..24

    @property
    def n_rows(self) -> int:
        return len(self.custkey)

    def as_columns(self) -> dict[str, np.ndarray]:
        return {"custkey": self.custkey, "nationcode": self.nationcode}


def generate_lineitem(n_rows: int, seed: int = 42) -> LineitemData:
    """Generate *n_rows* of lineitem data (call before projection sorting)."""
    rng = np.random.default_rng(seed)
    returnflag = rng.choice(
        len(RETURNFLAG_DICTIONARY), size=n_rows, p=_RETURNFLAG_WEIGHTS
    ).astype(np.uint8)
    shipdate = rng.integers(
        SHIPDATE_MIN, SHIPDATE_MAX + 1, size=n_rows, dtype=np.int64
    ).astype(np.int32)
    linenum = rng.choice(LINENUM_DOMAIN, size=n_rows, p=_LINENUM_WEIGHTS).astype(
        np.int32
    )
    quantity = rng.integers(1, 51, size=n_rows, dtype=np.int64).astype(np.int32)
    return LineitemData(
        returnflag=returnflag,
        shipdate=shipdate,
        linenum=linenum,
        quantity=quantity,
    )


def generate_orders(n_rows: int, n_customers: int, seed: int = 43) -> OrdersData:
    """Generate orders sorted by shipdate; custkey uniform over customers."""
    rng = np.random.default_rng(seed)
    shipdate = np.sort(
        rng.integers(SHIPDATE_MIN, SHIPDATE_MAX + 1, size=n_rows, dtype=np.int64)
    ).astype(np.int32)
    custkey = rng.integers(1, n_customers + 1, size=n_rows, dtype=np.int64)
    return OrdersData(shipdate=shipdate, custkey=custkey)


def generate_customer(n_rows: int, seed: int = 44) -> CustomerData:
    """Generate the customer dimension: dense PK 1..n, random nation codes."""
    rng = np.random.default_rng(seed)
    custkey = np.arange(1, n_rows + 1, dtype=np.int64)
    nationcode = rng.integers(0, NATION_COUNT, size=n_rows, dtype=np.int64).astype(
        np.int32
    )
    return CustomerData(custkey=custkey, nationcode=nationcode)
