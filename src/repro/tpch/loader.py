"""Load generated TPC-H data into C-Store projections.

Reproduces the paper's physical design:

* ``lineitem`` projection over (RETURNFLAG, SHIPDATE, LINENUM, QUANTITY),
  sorted by RETURNFLAG, then SHIPDATE, then LINENUM. RETURNFLAG and SHIPDATE
  are RLE-compressed; LINENUM is stored redundantly as uncompressed, RLE,
  and bit-vector; QUANTITY stays uncompressed.
* ``orders`` (SHIPDATE, CUSTKEY) sorted by SHIPDATE, and ``customer``
  (CUSTKEY, NATIONCODE) sorted by CUSTKEY, with the paper's 10:1 orders to
  customer ratio and 4:1 lineitem to orders ratio.
"""

from __future__ import annotations

from ..dtypes import DATE, INT32, INT64, UINT8, ColumnSchema
from ..storage.catalog import Catalog
from .generator import (
    RETURNFLAG_DICTIONARY,
    generate_customer,
    generate_lineitem,
    generate_orders,
)

LINEITEM_ROWS_PER_SCALE = 6_000_000
"""TPC-H lineitem cardinality per unit scale factor."""


def lineitem_rows_for_scale(scale: float) -> int:
    """Lineitem cardinality at a TPC-H scale factor (floor 1 row)."""
    return max(int(LINEITEM_ROWS_PER_SCALE * scale), 1)


def load_tpch(
    catalog: Catalog,
    scale: float = 0.01,
    seed: int = 42,
    linenum_encodings: tuple[str, ...] = ("uncompressed", "rle", "bitvector"),
    partitions: int = 1,
) -> None:
    """Generate and store the paper's three projections at the given scale.

    The paper's scale-10 ratios are preserved: |lineitem| = 4 x |orders|,
    |orders| = 10 x |customer| (60 M / 15 M / 1.5 M at scale 10).

    ``partitions`` above one range-partitions the (large, sorted) lineitem
    projection into that many contiguous chunks with per-partition zone
    maps; orders and customer stay unpartitioned so joins keep working.
    """
    n_lineitem = lineitem_rows_for_scale(scale)
    n_orders = max(n_lineitem // 4, 1)
    n_customer = max(n_orders // 10, 1)

    lineitem = generate_lineitem(n_lineitem, seed=seed)
    catalog.create_projection(
        "lineitem",
        lineitem.as_columns(),
        schemas={
            "returnflag": ColumnSchema(
                "returnflag", UINT8, dictionary=RETURNFLAG_DICTIONARY
            ),
            "shipdate": ColumnSchema("shipdate", DATE),
            "linenum": ColumnSchema("linenum", INT32),
            "quantity": ColumnSchema("quantity", INT32),
        },
        sort_keys=["returnflag", "shipdate", "linenum"],
        anchor="lineitem",
        encodings={
            "returnflag": ["rle"],
            "shipdate": ["rle"],
            "linenum": list(linenum_encodings),
            "quantity": ["uncompressed"],
        },
        partitions=partitions,
    )

    orders = generate_orders(n_orders, n_customer, seed=seed + 1)
    catalog.create_projection(
        "orders",
        orders.as_columns(),
        schemas={
            "shipdate": ColumnSchema("shipdate", DATE),
            "custkey": ColumnSchema("custkey", INT64),
        },
        sort_keys=["shipdate"],
        encodings={"shipdate": ["rle"], "custkey": ["uncompressed"]},
        presorted=True,
        anchor="orders",
    )

    customer = generate_customer(n_customer, seed=seed + 2)
    catalog.create_projection(
        "customer",
        customer.as_columns(),
        schemas={
            "custkey": ColumnSchema("custkey", INT64),
            "nationcode": ColumnSchema("nationcode", INT32),
        },
        sort_keys=["custkey"],
        encodings={
            "custkey": ["uncompressed"],
            "nationcode": ["uncompressed"],
        },
        presorted=True,
        anchor="customer",
    )
