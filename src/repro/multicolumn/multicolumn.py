"""The multi-column block: position descriptor + mini-columns."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ExecutionError
from ..positions import PositionSet
from .minicolumn import MiniColumn


@dataclass
class MultiColumn:
    """A horizontal partition of some attributes plus their valid positions.

    Mirrors the paper's definition: a covering position range, an array of
    mini-columns (one per included attribute, kept compressed), and a position
    descriptor (range, bitmap, or listed) marking which positions in the range
    remain valid after predicates.
    """

    start: int
    stop: int
    descriptor: PositionSet
    minicolumns: dict[str, MiniColumn] = field(default_factory=dict)

    @property
    def degree(self) -> int:
        """Number of included attributes (size of the mini-column array)."""
        return len(self.minicolumns)

    def attach(self, minicolumn: MiniColumn) -> None:
        """Add an attribute's mini-column to this multi-column."""
        self.minicolumns[minicolumn.column] = minicolumn

    def minicolumn(self, column: str) -> MiniColumn:
        try:
            return self.minicolumns[column]
        except KeyError:
            raise ExecutionError(
                f"multi-column has no mini-column for {column!r} "
                f"(has {sorted(self.minicolumns)})"
            ) from None

    def has_column(self, column: str) -> bool:
        return column in self.minicolumns

    def intersect(self, other: "MultiColumn") -> "MultiColumn":
        """AND two multi-columns (paper Section 3.6).

        The result's covering range and descriptor are the intersections of
        the inputs'; its mini-column set is the union of the inputs' — copying
        mini-column pointers is the paper's "zero-cost operation".
        """
        merged = dict(self.minicolumns)
        merged.update(other.minicolumns)
        return MultiColumn(
            start=max(self.start, other.start),
            stop=min(self.stop, other.stop),
            descriptor=self.descriptor.intersect(other.descriptor),
            minicolumns=merged,
        )

    def with_descriptor(self, descriptor: PositionSet) -> "MultiColumn":
        """Replace the position descriptor, keeping mini-columns pinned."""
        return MultiColumn(
            start=self.start,
            stop=self.stop,
            descriptor=descriptor,
            minicolumns=dict(self.minicolumns),
        )

    def valid_count(self) -> int:
        return self.descriptor.count()
