"""Mini-columns: pinned, still-encoded column block payloads."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..storage.block import BlockDescriptor
from ..storage.column_file import ColumnFile


@dataclass
class MiniColumn:
    """The values of one attribute over a covering position range.

    Holds references to the encoded payloads of the blocks a scan touched
    (conceptually: pointers into the buffer pool). Values stay compressed in
    their native format; extraction decodes lazily, per block, only for the
    positions requested.
    """

    column_file: ColumnFile
    payloads: dict[int, bytes] = field(default_factory=dict)

    @property
    def column(self) -> str:
        return self.column_file.column

    def pin(self, descriptor: BlockDescriptor, payload: bytes) -> None:
        """Retain a block payload for later positional extraction."""
        self.payloads[descriptor.index] = payload

    def has_block(self, index: int) -> bool:
        return index in self.payloads

    def payload(self, index: int) -> bytes:
        return self.payloads[index]

    def block_count(self) -> int:
        return len(self.payloads)

    def gather(self, positions: np.ndarray) -> np.ndarray:
        """Extract values at sorted absolute *positions* from pinned payloads.

        The caller guarantees every position falls inside a pinned block (a
        multi-column only covers ranges its scan produced).
        """
        cf = self.column_file
        out = np.empty(len(positions), dtype=cf.dtype)
        cursor = 0
        for desc in cf.descriptors:
            if cursor >= len(positions):
                break
            hi = np.searchsorted(positions, desc.end_pos, side="left")
            if hi <= cursor:
                continue
            chunk = positions[cursor:hi]
            out[cursor:hi] = cf.encoding.gather(
                self.payloads[desc.index], desc, cf.dtype, chunk
            )
            cursor = hi
        return out
