"""Multi-column intermediate results (paper Section 3.6).

A multi-column is the specialised data structure that makes late
materialization's column re-access free: it pins the encoded block payloads a
data source already read (mini-columns, still in their on-disk compression
format) next to a position descriptor saying which positions remain valid.
Downstream DS3 operators then extract values from the pinned payloads instead
of re-reading the column.
"""

from .minicolumn import MiniColumn
from .multicolumn import MultiColumn

__all__ = ["MiniColumn", "MultiColumn"]
