"""repro: a reproduction of "Materialization Strategies in a Column-Oriented
DBMS" (Abadi, Myers, DeWitt, Madden — ICDE 2007).

A C-Store-style column engine built from scratch in Python: 64 KB block
storage with uncompressed/RLE/bit-vector encodings, a cost-accounted buffer
pool, position-set algebra, multi-column intermediate results, the paper's
operator set (DS1-DS4, AND, MERGE, SPC, aggregates, joins), the four
materialization strategies (EM/LM x pipelined/parallel), the analytical cost
model of Section 3, and a TPC-H-style workload generator.

Quickstart::

    from repro import Database, SelectQuery, Predicate, load_tpch

    db = Database("./mydb")
    load_tpch(db.catalog, scale=0.005)
    result = db.query(
        SelectQuery(
            projection="lineitem",
            select=("shipdate", "linenum"),
            predicates=(Predicate("shipdate", "<", 8700),
                        Predicate("linenum", "<", 7)),
        ),
        strategy="auto",
    )
    print(result.strategy, result.n_rows, result.wall_ms)
"""

from .dtypes import (
    DATE,
    FLOAT64,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    ColumnSchema,
    ColumnType,
)
from .cancel import CancelToken
from .engine import Database, QueryResult
from .errors import (
    CatalogError,
    CorruptBlockError,
    EncodingError,
    ExecutionError,
    PlanError,
    QuarantinedPartitionError,
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
    SQLError,
    StorageError,
    TransientIOError,
    UnsupportedOperationError,
)
from .faults import (
    NO_RETRY,
    FaultInjector,
    FaultRule,
    PartitionQuarantine,
    RetryPolicy,
)
from .scrub import ScrubIssue, ScrubReport, scrub_catalog
from .metrics import REGISTRY, MetricsRegistry, QueryStats
from .model import (
    PAPER_CONSTANTS,
    CalibrationReport,
    ModelConstants,
    calibrate_constants,
    recalibrate_from_log,
)
from .advisor import AdvisorAction, AdvisorPlan, advise, apply_plan
from .observe import Span, SpanTracer
from .operators.aggregate import AggSpec
from .planner import (
    JoinQuery,
    LeftTableStrategy,
    RightTableStrategy,
    SelectQuery,
    Strategy,
    choose_strategy,
)
from .predicates import InPredicate, Predicate
from .exposition import render_prometheus
from .qlog import QueryLog, query_fingerprint, query_template, read_query_log
from .workload import (
    ReplayReport,
    WorkloadSummary,
    replay_log,
    summarize_log,
)
from .tpch import load_tpch

__version__ = "0.1.0"

__all__ = [
    "Database",
    "QueryResult",
    "QueryStats",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "SpanTracer",
    "SelectQuery",
    "JoinQuery",
    "Strategy",
    "LeftTableStrategy",
    "RightTableStrategy",
    "Predicate",
    "InPredicate",
    "AggSpec",
    "load_tpch",
    "choose_strategy",
    "ModelConstants",
    "PAPER_CONSTANTS",
    "calibrate_constants",
    "CalibrationReport",
    "recalibrate_from_log",
    "AdvisorAction",
    "AdvisorPlan",
    "advise",
    "apply_plan",
    "ColumnSchema",
    "ColumnType",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "UINT8",
    "FLOAT64",
    "DATE",
    "ReproError",
    "StorageError",
    "EncodingError",
    "CatalogError",
    "CorruptBlockError",
    "TransientIOError",
    "QuarantinedPartitionError",
    "PlanError",
    "UnsupportedOperationError",
    "ExecutionError",
    "QueryCancelledError",
    "QueryTimeoutError",
    "CancelToken",
    "SQLError",
    "FaultInjector",
    "FaultRule",
    "RetryPolicy",
    "NO_RETRY",
    "PartitionQuarantine",
    "ScrubIssue",
    "ScrubReport",
    "scrub_catalog",
    "QueryLog",
    "read_query_log",
    "query_fingerprint",
    "query_template",
    "WorkloadSummary",
    "summarize_log",
    "ReplayReport",
    "replay_log",
    "render_prometheus",
]
