"""Query execution statistics and the process-wide metrics registry.

Two layers of observability live here:

* :class:`QueryStats` — per-query counters every operator increments on a
  shared instance. The counters correspond one-to-one to the terms of the
  paper's analytical model (Table 1), which lets the model be replayed over
  *observed* behaviour: ``repro.model.cost.simulated_time_ms(stats,
  constants)`` converts a finished query's counters into the model's
  predicted milliseconds. Benchmarks report both wall-clock and this
  simulated time, because on a laptop-scale Python substrate the simulated
  time is what preserves the paper's I/O trade-offs.
* :class:`MetricsRegistry` — process-lifetime counters, latency histograms
  (per strategy and per encoding override) and a ring-buffer slow-query
  log. The engine reports every query into a registry; the buffer pool and
  decoded-block cache are attached as pull-based *collectors*, so one
  :meth:`MetricsRegistry.snapshot` is the single source of truth a
  benchmark or serving layer reads. The module-level :data:`REGISTRY` is
  the process-wide default; pass ``Database(..., metrics=...)`` to isolate.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from collections import OrderedDict, deque
from dataclasses import dataclass, field, fields


@dataclass
class QueryStats:
    """Counters accumulated during one query execution.

    Attributes mirror Table 1 of the paper:

    * ``block_reads`` / ``disk_seeks`` — physical I/O issued past the buffer
      pool (the model's ``|C| * READ`` and ``|C|/PF * SEEK`` terms).
    * ``buffer_hits`` — reads absorbed by the buffer pool (the model's ``F``).
    * ``block_iterations`` — getNext() calls on block iterators (``BIC``).
    * ``column_iterations`` — per-value (or per-run) column iterator steps
      (``TICCOL``).
    * ``tuple_iterations`` — per-tuple iterator steps (``TICTUP``).
    * ``function_calls`` — glue function calls (``FC``).
    * ``tuples_constructed`` — row-style tuples stitched together.
    * ``values_scanned`` — raw values a predicate was applied to.
    * ``positions_intersected`` — position-list elements consumed by AND.
    * ``tuples_output`` — tuples handed to the query consumer.
    * ``blocks_skipped`` — blocks pruned via min/max or position coverage.
    * ``decode_hits`` / ``decode_misses`` — decoded-block cache hits and
      decode kernel invocations (the scan fast-path; not a model term, so
      neither feeds the simulated-time replay). These flow end-to-end:
      ``Database.query`` surfaces them on ``QueryResult.stats`` and the
      span tree attributes them per operator.
    * ``compressed_scans`` / ``morphs`` — blocks a compressed-execution
      kernel answered in the encoded domain, and blocks that *morphed*:
      a kernel-capable block the stay-vs-morph model sent to the decoded
      path instead (plus position sets an operator had to expand out of
      run form). Observability for the compressed-execution layer; not
      model terms, so neither feeds the simulated-time replay.
    * ``io_retries`` / ``io_gave_up`` — block-read attempts retried after a
      :class:`~repro.errors.TransientIOError`, and reads abandoned after the
      retry budget was exhausted (the fault-tolerance layer; retries charge
      their simulated backoff to ``simulated_io_us``).
    * ``simulated_io_us`` — microseconds the simulated disk model charged
      (the replayed ``SEEK``/``READ`` terms, plus injected slow-block
      latency and retry backoff when a fault schedule is active).

    The field list is the contract: ``merge``/``reset``/``as_dict`` operate
    reflectively over it, the class docstring documents every field (guarded
    by a reflection test), and new fields must keep all three in sync.
    """

    block_reads: int = 0
    disk_seeks: int = 0
    buffer_hits: int = 0
    decode_hits: int = 0
    decode_misses: int = 0
    block_iterations: int = 0
    column_iterations: int = 0
    tuple_iterations: int = 0
    function_calls: int = 0
    tuples_constructed: int = 0
    values_scanned: int = 0
    positions_intersected: int = 0
    tuples_output: int = 0
    blocks_skipped: int = 0
    compressed_scans: int = 0
    morphs: int = 0
    io_retries: int = 0
    io_gave_up: int = 0
    simulated_io_us: float = 0.0

    extra: dict = field(default_factory=dict)

    def merge(self, other: "QueryStats") -> None:
        """Fold another stats object into this one (for sub-plans)."""
        for f in fields(self):
            if f.name == "extra":
                continue
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0) + value

    def reset(self) -> None:
        for f in fields(self):
            if f.name == "extra":
                self.extra = {}
            else:
                setattr(self, f.name, type(getattr(self, f.name))())

    def as_dict(self) -> dict:
        out = {
            f.name: getattr(self, f.name) for f in fields(self) if f.name != "extra"
        }
        out.update(self.extra)
        return out

    def __str__(self) -> str:
        pairs = ", ".join(f"{k}={v}" for k, v in self.as_dict().items() if v)
        return f"QueryStats({pairs})"


# --------------------------------------------------------------------------
# Process-wide metrics registry
# --------------------------------------------------------------------------


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("value", "_lock")

    def __init__(self):
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        """Add *n* (default 1) to the counter."""
        with self._lock:
            self.value += n


class LatencyHistogram:
    """Log-bucketed latency histogram (milliseconds).

    Buckets double from 0.01 ms up to ~21 minutes, which keeps recording
    O(log buckets) and snapshots tiny while still giving usable p50/p90/p99
    estimates (each percentile reports its bucket's upper bound).
    """

    #: Upper bounds of the buckets, in ms; the last bucket is unbounded.
    BOUNDS = tuple(0.01 * 2**i for i in range(27))

    __slots__ = ("counts", "count", "sum_ms", "min_ms", "max_ms", "_lock")

    def __init__(self):
        self.counts = [0] * (len(self.BOUNDS) + 1)
        self.count = 0
        self.sum_ms = 0.0
        self.min_ms = float("inf")
        self.max_ms = 0.0
        self._lock = threading.Lock()

    def record(self, ms: float) -> None:
        """Record one latency observation in milliseconds."""
        bucket = bisect_left(self.BOUNDS, ms)
        with self._lock:
            self.counts[bucket] += 1
            self.count += 1
            self.sum_ms += ms
            self.min_ms = min(self.min_ms, ms)
            self.max_ms = max(self.max_ms, ms)

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket holding the *q*-quantile (0 < q <= 1)."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                return self.BOUNDS[i] if i < len(self.BOUNDS) else self.max_ms
        return self.max_ms  # pragma: no cover - defensive

    def snapshot(self) -> dict:
        """Summary dict: count, sum, min/max/mean and p50/p90/p99."""
        with self._lock:
            if self.count == 0:
                return {"count": 0}
            return {
                "count": self.count,
                "sum_ms": round(self.sum_ms, 4),
                "mean_ms": round(self.sum_ms / self.count, 4),
                "min_ms": round(self.min_ms, 4),
                "max_ms": round(self.max_ms, 4),
                "p50_ms": round(self.percentile(0.50), 4),
                "p90_ms": round(self.percentile(0.90), 4),
                "p99_ms": round(self.percentile(0.99), 4),
            }

    def export(self) -> dict:
        """Raw bucket dump for exposition: bounds, per-bucket counts, totals.

        Unlike :meth:`snapshot` (a human-facing summary), this carries the
        full bucket array so :func:`repro.exposition.render_prometheus` can
        emit a standard cumulative ``_bucket{le=...}`` series.
        """
        with self._lock:
            return {
                "bounds": list(self.BOUNDS),
                "counts": list(self.counts),
                "count": self.count,
                "sum_ms": self.sum_ms,
            }


class SlowQueryLog:
    """Ring buffer of the most recent queries over a latency threshold."""

    def __init__(self, threshold_ms: float = 100.0, capacity: int = 128):
        self.threshold_ms = threshold_ms
        self._entries: deque = deque(maxlen=max(capacity, 1))
        self._lock = threading.Lock()

    def observe(self, wall_ms: float, threshold_ms: float | None = None,
                **entry) -> bool:
        """Record *entry* if ``wall_ms`` meets the (possibly overridden)
        threshold; returns whether it was logged."""
        limit = self.threshold_ms if threshold_ms is None else threshold_ms
        if wall_ms < limit:
            return False
        with self._lock:
            self._entries.append(
                {"wall_ms": round(wall_ms, 3), "ts": time.time(), **entry}
            )
        return True

    def entries(self) -> list[dict]:
        """Logged entries, oldest first."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class MetricsRegistry:
    """Process-lifetime metrics: counters, histograms, slow-query log.

    The engine calls :meth:`observe_query` once per finished query; cache
    layers are attached as pull-based collectors (a name plus a zero-arg
    callable returning a dict), so their live state appears in every
    :meth:`snapshot` without any hot-path bookkeeping.
    """

    def __init__(
        self,
        slow_query_threshold_ms: float = 100.0,
        slow_query_capacity: int = 128,
    ):
        self._lock = threading.Lock()
        self._counters: OrderedDict[str, Counter] = OrderedDict()
        self._histograms: OrderedDict[str, LatencyHistogram] = OrderedDict()
        self._collectors: OrderedDict[str, object] = OrderedDict()
        self.slow_queries = SlowQueryLog(
            threshold_ms=slow_query_threshold_ms,
            capacity=slow_query_capacity,
        )

    # ------------------------------------------------------------ instruments

    def counter(self, name: str) -> Counter:
        """Get (or lazily create) the counter called *name*."""
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter()
            return c

    def histogram(self, name: str) -> LatencyHistogram:
        """Get (or lazily create) the latency histogram called *name*."""
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = LatencyHistogram()
            return h

    def register_collector(self, name: str, fn) -> None:
        """Attach a pull-based source; *fn* is called at snapshot time.

        Re-registering a name replaces the previous source (a new
        ``Database`` over the same registry supersedes the old one's caches).
        """
        with self._lock:
            self._collectors[name] = fn

    def unregister_collector(self, name: str, fn=None) -> None:
        """Detach a collector; with *fn* given, only if it is still *fn*.

        Equality (not identity) comparison, so bound methods — a fresh
        object on every attribute access — unregister correctly.
        """
        with self._lock:
            if fn is None or self._collectors.get(name) == fn:
                self._collectors.pop(name, None)

    # ------------------------------------------------------------- reporting

    def observe_query(
        self,
        strategy: str,
        wall_ms: float,
        simulated_ms: float = 0.0,
        rows: int = 0,
        description: str = "",
        encodings=(),
        slow_threshold_ms: float | None = None,
        queue_wait_ms: float = 0.0,
        degraded: bool = False,
    ) -> None:
        """Record one finished query into counters, histograms, slow log.

        ``queue_wait_ms`` and ``degraded`` travel onto the slow-query ring
        buffer entry, so a slow served query shows how much of its latency
        was admission-queue wait and whether it completed over a partial
        (quarantine-degraded) partition set.
        """
        self.counter("queries_total").inc()
        self.counter(f"queries.strategy.{strategy}").inc()
        for encoding in encodings:
            self.counter(f"queries.encoding.{encoding}").inc()
            self.histogram(f"query_wall_ms.encoding.{encoding}").record(wall_ms)
        self.histogram("query_wall_ms").record(wall_ms)
        self.histogram(f"query_wall_ms.strategy.{strategy}").record(wall_ms)
        self.histogram(f"query_sim_ms.strategy.{strategy}").record(simulated_ms)
        logged = self.slow_queries.observe(
            wall_ms,
            threshold_ms=slow_threshold_ms,
            strategy=strategy,
            simulated_ms=round(simulated_ms, 3),
            rows=rows,
            query=description,
            queue_wait_ms=round(queue_wait_ms, 3),
            degraded=degraded,
        )
        if logged:
            self.counter("queries_slow_total").inc()

    # ------------------------------------------------------------- lifecycle

    def snapshot(self) -> dict:
        """One JSON-safe dict of everything the registry knows right now."""
        with self._lock:
            counters = {name: c.value for name, c in self._counters.items()}
            histograms = {
                name: h.snapshot() for name, h in self._histograms.items()
            }
            collectors = list(self._collectors.items())
        out = {
            "counters": counters,
            "histograms": histograms,
            "slow_queries": self.slow_queries.entries(),
        }
        for name, fn in collectors:
            try:
                out[name] = fn()
            except Exception as exc:  # collector outlived its owner
                out[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return out

    def export(self) -> dict:
        """Exposition-grade dump: like :meth:`snapshot` but with raw
        histogram buckets (via :meth:`LatencyHistogram.export`) so the
        Prometheus renderer can emit cumulative ``_bucket`` series."""
        with self._lock:
            counters = {name: c.value for name, c in self._counters.items()}
            histograms = {
                name: h.export() for name, h in self._histograms.items()
            }
            collectors = list(self._collectors.items())
        out = {
            "counters": counters,
            "histograms": histograms,
            "slow_queries": self.slow_queries.entries(),
        }
        for name, fn in collectors:
            try:
                out[name] = fn()
            except Exception as exc:  # collector outlived its owner
                out[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return out

    def reset(self) -> None:
        """Drop counters, histograms and the slow-query log (collectors stay)."""
        with self._lock:
            self._counters.clear()
            self._histograms.clear()
        self.slow_queries.clear()


#: The process-wide default registry every Database reports into unless
#: constructed with an explicit ``metrics=`` argument.
REGISTRY = MetricsRegistry()
