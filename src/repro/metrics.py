"""Query execution statistics.

Every operator increments counters on a shared :class:`QueryStats` instance.
The counters correspond one-to-one to the terms of the paper's analytical
model (Table 1), which lets the model be replayed over *observed* behaviour:
``repro.model.cost.simulated_time_ms(stats, constants)`` converts a finished
query's counters into the model's predicted milliseconds. Benchmarks report
both wall-clock and this simulated time, because on a laptop-scale Python
substrate the simulated time is what preserves the paper's I/O trade-offs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class QueryStats:
    """Counters accumulated during one query execution.

    Attributes mirror Table 1 of the paper:

    * ``block_reads`` / ``disk_seeks`` — physical I/O issued past the buffer
      pool (the model's ``|C| * READ`` and ``|C|/PF * SEEK`` terms).
    * ``buffer_hits`` — reads absorbed by the buffer pool (the model's ``F``).
    * ``block_iterations`` — getNext() calls on block iterators (``BIC``).
    * ``column_iterations`` — per-value (or per-run) column iterator steps
      (``TICCOL``).
    * ``tuple_iterations`` — per-tuple iterator steps (``TICTUP``).
    * ``function_calls`` — glue function calls (``FC``).
    * ``tuples_constructed`` — row-style tuples stitched together.
    * ``values_scanned`` — raw values a predicate was applied to.
    * ``positions_intersected`` — position-list elements consumed by AND.
    * ``tuples_output`` — tuples handed to the query consumer.
    * ``blocks_skipped`` — blocks pruned via min/max or position coverage.
    * ``decode_hits`` / ``decode_misses`` — decoded-block cache hits and
      decode kernel invocations (the scan fast-path; not a model term, so
      neither feeds the simulated-time replay).
    """

    block_reads: int = 0
    disk_seeks: int = 0
    buffer_hits: int = 0
    decode_hits: int = 0
    decode_misses: int = 0
    block_iterations: int = 0
    column_iterations: int = 0
    tuple_iterations: int = 0
    function_calls: int = 0
    tuples_constructed: int = 0
    values_scanned: int = 0
    positions_intersected: int = 0
    tuples_output: int = 0
    blocks_skipped: int = 0
    simulated_io_us: float = 0.0

    extra: dict = field(default_factory=dict)

    def merge(self, other: "QueryStats") -> None:
        """Fold another stats object into this one (for sub-plans)."""
        for f in fields(self):
            if f.name == "extra":
                continue
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0) + value

    def reset(self) -> None:
        for f in fields(self):
            if f.name == "extra":
                self.extra = {}
            else:
                setattr(self, f.name, type(getattr(self, f.name))())

    def as_dict(self) -> dict:
        out = {
            f.name: getattr(self, f.name) for f in fields(self) if f.name != "extra"
        }
        out.update(self.extra)
        return out

    def __str__(self) -> str:
        pairs = ", ".join(f"{k}={v}" for k, v in self.as_dict().items() if v)
        return f"QueryStats({pairs})"
