"""The n-ary MERGE operator (paper Figure 5).

Combines k parallel value vectors — all extracted at the same final position
list — into k-ary output tuples. This is the single tuple-construction point
of a late-materialization plan.
"""

from __future__ import annotations

import numpy as np

from ..errors import ExecutionError
from .base import ExecutionContext
from .tuples import TupleSet


class MergeOp:
    """Stitch k aligned value vectors into output tuples."""

    def __init__(self, ctx: ExecutionContext):
        self.ctx = ctx

    def execute(self, columns: dict[str, np.ndarray]) -> TupleSet:
        if not columns:
            raise ExecutionError("MERGE of zero columns")
        stats = self.ctx.stats
        span = self.ctx.begin("MERGE")
        k = len(columns)
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise ExecutionError(f"MERGE inputs differ in length: {lengths}")
        n = lengths.pop()
        # Figure 5: access values as vectors (n*k FC) and produce tuples as
        # an array (n*k FC) — no per-tuple iterator on either side.
        stats.function_calls += 2 * n * k
        result = TupleSet.stitch(columns, stats=stats)
        if span is not None:
            self.ctx.end(span, columns=list(columns), tuples=n)
        return result
