"""Query output: the final iteration over result tuples.

Both the paper's model and its experiments include the cost of iterating the
output (``numOutTuples * TICTUP``); :func:`drain` charges it and finalises the
result.
"""

from __future__ import annotations

from .base import ExecutionContext
from .tuples import POSITION_COLUMN, TupleSet


def drain(ctx: ExecutionContext, tuples: TupleSet) -> TupleSet:
    """Consume a result tuple stream, counting per-tuple output iteration."""
    span = ctx.begin("OUTPUT")
    if POSITION_COLUMN in tuples.columns:
        tuples = tuples.without(POSITION_COLUMN)
    n = tuples.n_tuples
    ctx.stats.tuples_output += n
    ctx.stats.tuple_iterations += n
    if span is not None:
        ctx.end(span, rows=n)
    return tuples
