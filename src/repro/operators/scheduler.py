"""Concurrent scan scheduler for the parallel materialization strategies.

The EM-parallel and LM-parallel plans (paper Figures 3/5) have leaves with no
data dependencies: one full column scan per predicate (DS1) or per input
column (SPC). The scheduler runs those leaves on a shared
:class:`~concurrent.futures.ThreadPoolExecutor`; the numpy decode and
predicate kernels release the GIL, so independent column scans genuinely
overlap.

Determinism contract: every leaf executes against its own fresh
:class:`~repro.metrics.QueryStats` (and trace list), and the per-leaf results
are merged into the parent context **in task-submission order** after the
barrier. Since the leaves touch disjoint column files, the buffer pool's
per-path miss/prefetch behaviour is independent of thread interleaving, and
the merged counters — hence the simulated-time replay — are identical to a
serial run of the same plan whenever the pool is large enough that leaves do
not evict one another's blocks mid-query.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Sequence

from ..metrics import QueryStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .base import ExecutionContext


class ScanScheduler:
    """Runs independent scan leaves on a bounded worker pool."""

    def __init__(self, max_workers: int):
        if max_workers < 1:
            raise ValueError("ScanScheduler needs at least one worker")
        self.max_workers = max_workers
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def _pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-scan",
                )
            return self._executor

    def run(
        self,
        parent: "ExecutionContext",
        tasks: Sequence[Callable[["ExecutionContext"], object]],
    ) -> list:
        """Execute *tasks* concurrently; results come back in task order.

        Each task receives a leaf context sharing the parent's pool and
        decoded cache but with private stats and span tracer, merged back
        deterministically after all leaves finish. A leaf that raised has
        its open spans closed as ``status="error"`` before adoption, so a
        failure mid-scan still yields a truncated-but-valid span tree.
        """
        leaves = [parent.leaf() for _ in tasks]
        executor = self._pool()
        futures = [
            executor.submit(task, leaf) for task, leaf in zip(tasks, leaves)
        ]
        results: list = []
        errors: list[BaseException | None] = []
        error: BaseException | None = None
        for future in futures:  # barrier: wait for every leaf
            try:
                results.append(future.result())
                errors.append(None)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                results.append(None)
                errors.append(exc)
                if error is None:
                    error = exc
        # Deterministic merge: task order, never completion order.
        for leaf, leaf_error in zip(leaves, errors):
            parent.stats.merge(leaf.stats)
            if parent.tracer is not None and leaf.tracer is not None:
                parent.tracer.adopt(leaf.tracer, error=leaf_error)
        if error is not None:
            raise error
        return results

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
