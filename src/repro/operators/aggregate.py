"""Aggregation operators.

Two flavours, matching the two materialization strategies:

* :class:`AggregateEM` consumes constructed row-style tuples through a tuple
  iterator (TICTUP per input row).
* :class:`AggregateLM` consumes parallel column vectors straight from DS3
  extraction — no tuples exist yet, input iteration is vector-style (TICCOL),
  and the only tuples ever constructed are the group summary rows. This is
  why the LM curves drop so far below EM in Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PlanError
from .base import ExecutionContext
from .tuples import TupleSet

_SUPPORTED = ("sum", "count", "min", "max", "avg", "count_distinct")


@dataclass(frozen=True)
class AggSpec:
    """One aggregate, e.g. ``sum(linenum)``."""

    func: str
    column: str

    def __post_init__(self):
        if self.func not in _SUPPORTED:
            raise PlanError(f"unsupported aggregate {self.func!r}")

    @property
    def output_name(self) -> str:
        if self.func == "count_distinct":
            return f"count(distinct {self.column})"
        return f"{self.func}({self.column})"


def factorize_groups(
    group_arrays: list[np.ndarray],
) -> tuple[list[np.ndarray], np.ndarray]:
    """Distinct group keys (one array per group column) + per-row group ids.

    Single-column grouping uses plain ``np.unique``; compound keys factorize
    row-wise over the stacked key columns (lexicographic output order).
    """
    if len(group_arrays) == 1:
        uniques, inverse = np.unique(group_arrays[0], return_inverse=True)
        return [uniques.astype(np.int64)], inverse
    stacked = np.stack([a.astype(np.int64) for a in group_arrays], axis=1)
    uniques, inverse = np.unique(stacked, axis=0, return_inverse=True)
    return [uniques[:, i] for i in range(uniques.shape[1])], inverse


def _grouped_reduce(
    group_arrays: list[np.ndarray],
    group_names: list[str],
    columns: dict[str, np.ndarray],
    specs: list[AggSpec],
) -> dict[str, np.ndarray]:
    """Group-by reduce over parallel vectors; returns output column -> values."""
    keys, inverse = factorize_groups(group_arrays)
    k = len(keys[0]) if keys else 0
    out: dict[str, np.ndarray] = dict(zip(group_names, keys))
    counts = None
    for spec in specs:
        if spec.func == "count":
            counts = np.bincount(inverse, minlength=k) if counts is None else counts
            out[spec.output_name] = counts.astype(np.int64)
            continue
        values = columns[spec.column]
        if spec.func == "count_distinct":
            # Distinct (group, value) pairs, then pairs per group.
            pairs = np.unique(
                np.stack([inverse, values.astype(np.int64)], axis=1), axis=0
            )
            out[spec.output_name] = np.bincount(
                pairs[:, 0], minlength=k
            ).astype(np.int64)
        elif spec.func == "sum":
            out[spec.output_name] = np.bincount(
                inverse, weights=values, minlength=k
            ).astype(np.int64)
        elif spec.func == "avg":
            counts = np.bincount(inverse, minlength=k) if counts is None else counts
            sums = np.bincount(inverse, weights=values, minlength=k)
            out[spec.output_name] = (sums // np.maximum(counts, 1)).astype(np.int64)
        else:
            fill = np.iinfo(np.int64).max if spec.func == "min" else np.iinfo(
                np.int64
            ).min
            acc = np.full(k, fill, dtype=np.int64)
            ufunc = np.minimum if spec.func == "min" else np.maximum
            ufunc.at(acc, inverse, values.astype(np.int64))
            out[spec.output_name] = acc
    return out


def _normalize_groups(group_columns) -> list[str]:
    if isinstance(group_columns, str):
        return [group_columns]
    return list(group_columns)


class AggregateEM:
    """Group-by aggregation over an early-materialized tuple stream."""

    def __init__(
        self,
        ctx: ExecutionContext,
        group_columns,
        specs: list[AggSpec],
    ):
        self.ctx = ctx
        self.group_columns = _normalize_groups(group_columns)
        self.specs = specs

    def execute(self, tuples: TupleSet) -> TupleSet:
        stats = self.ctx.stats
        span = self.ctx.begin("AGG")
        n = tuples.n_tuples
        # The aggregator pulls every input row through a tuple iterator.
        stats.tuple_iterations += n
        stats.function_calls += n * (1 + len(self.specs))
        groups = [tuples.column(c) for c in self.group_columns]
        columns = {
            spec.column: tuples.column(spec.column)
            for spec in self.specs
            if spec.func != "count"
        }
        reduced = _grouped_reduce(groups, self.group_columns, columns, self.specs)
        result = TupleSet.stitch(reduced, stats=stats)
        stats.tuple_iterations += result.n_tuples
        if span is not None:
            self.ctx.end(
                span, style="tuple", tuples_in=n, groups=result.n_tuples
            )
        return result


class AggregateLM:
    """Group-by aggregation over parallel column vectors (no input tuples).

    When the group column arrived run-length encoded, pass ``group_runs`` —
    the run index of each input row — instead of decoding group values per
    row: the reduction then happens per run (operating directly on compressed
    data) and group values are only expanded once per distinct run.
    """

    def __init__(
        self,
        ctx: ExecutionContext,
        group_columns,
        specs: list[AggSpec],
    ):
        self.ctx = ctx
        self.group_columns = _normalize_groups(group_columns)
        self.specs = specs

    def execute(
        self,
        groups: dict[str, np.ndarray] | np.ndarray,
        columns: dict[str, np.ndarray],
    ) -> TupleSet:
        stats = self.ctx.stats
        span = self.ctx.begin("AGG")
        if isinstance(groups, np.ndarray):
            groups = {self.group_columns[0]: groups}
        group_arrays = [groups[c] for c in self.group_columns]
        n = len(group_arrays[0]) if group_arrays else 0
        # Vector-style input iteration: TICCOL per row, not TICTUP.
        stats.column_iterations += n
        stats.function_calls += n
        reduced = _grouped_reduce(
            group_arrays, self.group_columns, columns, self.specs
        )
        result = TupleSet.stitch(reduced, stats=stats)
        stats.tuple_iterations += result.n_tuples
        if span is not None:
            self.ctx.end(
                span, style="vector", rows_in=n, groups=result.n_tuples
            )
        return result

    def execute_runs(
        self,
        run_values: np.ndarray,
        run_ids: np.ndarray,
        columns: dict[str, np.ndarray],
    ) -> TupleSet:
        """Aggregate with the group column kept as (run value, run id) pairs.

        Args:
            run_values: group value of each distinct run, indexed by run id.
            run_ids: run id per input row (monotonic for sorted columns).
            columns: aggregate input vectors, parallel to ``run_ids``.
        """
        stats = self.ctx.stats
        if any(spec.func == "count_distinct" for spec in self.specs):
            raise PlanError(
                "count(distinct) has no per-run reduction; use the row path"
            )
        span = self.ctx.begin("AGG")
        n_runs = len(run_values)
        stats.column_iterations += n_runs  # one step per run, not per row
        stats.function_calls += n_runs
        # Reduce rows to runs first (cheap bincount over dense run ids), then
        # runs to groups (tiny).
        per_run: dict[str, np.ndarray] = {}
        for spec in self.specs:
            if spec.func == "count":
                continue
            values = columns[spec.column]
            if spec.func in ("sum", "avg"):
                per_run[spec.output_name] = np.bincount(
                    run_ids, weights=values, minlength=n_runs
                )
            else:
                fill = np.iinfo(np.int64).max if spec.func == "min" else np.iinfo(
                    np.int64
                ).min
                acc = np.full(n_runs, fill, dtype=np.int64)
                ufunc = np.minimum if spec.func == "min" else np.maximum
                ufunc.at(acc, run_ids, values.astype(np.int64))
                per_run[spec.output_name] = acc
        run_counts = np.bincount(run_ids, minlength=n_runs)
        # The run table covers whole blocks; runs no surviving row fell into
        # must not surface as output groups.
        occupied = run_counts > 0
        run_values = np.asarray(run_values)[occupied]
        run_counts = run_counts[occupied]
        per_run = {col: acc[occupied] for col, acc in per_run.items()}

        uniques, inverse = np.unique(run_values, return_inverse=True)
        k = len(uniques)
        out: dict[str, np.ndarray] = {
            self.group_columns[0]: uniques.astype(np.int64)
        }
        group_counts = np.bincount(inverse, weights=run_counts, minlength=k)
        for spec in self.specs:
            if spec.func == "count":
                out[spec.output_name] = group_counts.astype(np.int64)
            elif spec.func == "sum":
                out[spec.output_name] = np.bincount(
                    inverse, weights=per_run[spec.output_name], minlength=k
                ).astype(np.int64)
            elif spec.func == "avg":
                sums = np.bincount(
                    inverse, weights=per_run[spec.output_name], minlength=k
                )
                out[spec.output_name] = (
                    sums // np.maximum(group_counts, 1)
                ).astype(np.int64)
            else:
                fill = np.iinfo(np.int64).max if spec.func == "min" else np.iinfo(
                    np.int64
                ).min
                acc = np.full(k, fill, dtype=np.int64)
                ufunc = np.minimum if spec.func == "min" else np.maximum
                ufunc.at(acc, inverse, per_run[spec.output_name].astype(np.int64))
                out[spec.output_name] = acc
        result = TupleSet.stitch(out, stats=stats)
        stats.tuple_iterations += result.n_tuples
        if span is not None:
            self.ctx.end(
                span, style="runs", runs_in=n_runs, groups=result.n_tuples
            )
        return result
