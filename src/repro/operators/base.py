"""Execution context and shared positional-gather helper."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from ..buffer import BufferPool, DecodedBlockCache
from ..metrics import QueryStats
from ..multicolumn import MiniColumn
from ..observe import Span, SpanTracer
from ..storage.block import BlockDescriptor
from ..storage.column_file import ColumnFile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..model.constants import ModelConstants
    from .scheduler import ScanScheduler


@dataclass
class ExecutionContext:
    """Everything operators share during one query execution.

    Attributes:
        pool: buffer pool all block reads go through.
        stats: counters mirrored from the analytical model's cost terms.
        use_multicolumns: when True (the paper's optimised LM), scans pin the
            blocks they read into mini-columns so downstream positional access
            never re-touches the buffer pool.
    """

    pool: BufferPool
    stats: QueryStats = field(default_factory=QueryStats)
    use_multicolumns: bool = True
    use_indexes: bool = True
    #: MonetDB/X100-style execution (paper Section 5's contrast): scans
    #: decompress data into the cache immediately, so downstream operators
    #: never work on compressed representations. Costs are charged per value
    #: instead of per run. Used by the selection-vectors ablation.
    decompress_eagerly: bool = False
    #: Second cache level of the scan fast-path: decoded value arrays and RLE
    #: run tables, shared across queries. None disables the fast path (every
    #: block access re-runs the decode kernel, the pre-cache behaviour).
    decoded: DecodedBlockCache | None = None
    #: Compressed execution: DS1 scans dispatch to per-encoding kernels
    #: (``repro.compressed``) and the LM aggregation tail consumes run
    #: tables / code histograms directly. Off implies every block takes the
    #: decoded path (the pre-kernel behaviour); ``decompress_eagerly``
    #: contexts always run with this off (``__post_init__`` enforces it).
    compressed: bool = True
    #: Model constants the stay-vs-morph decisions are costed with; shared
    #: with everything else replaying the analytical model. ``None`` (a bare
    #: context) resolves to the paper constants at kernel-dispatch time.
    constants: "ModelConstants | None" = None
    #: When set, the parallel strategies hand their independent scan leaves
    #: to this scheduler instead of running them serially.
    scheduler: "ScanScheduler | None" = None
    #: When not None, operators record structured spans here — the
    #: observability hook behind ``Database.query(..., trace=True)`` and
    #: ``Database.explain(..., analyze=True)``. None keeps the hot path
    #: untouched (``begin`` returns None without allocating).
    tracer: SpanTracer | None = None
    #: Storage-failure policy: ``"fail"`` (default) aborts the query on the
    #: first unrecovered error, bit-for-bit the pre-fault-layer contract;
    #: ``"degrade"`` quarantines a failing partition and completes the query
    #: over the survivors, marking the result degraded.
    on_error: str = "fail"
    #: Session-scoped quarantine registry (shared with the Database); only
    #: consulted/updated when ``on_error == "degrade"``.
    quarantine: "object | None" = None
    #: Names of partitions this query skipped (already-quarantined ones plus
    #: any newly quarantined mid-query), in partition order. The engine
    #: surfaces a non-empty list as ``QueryResult.degraded``.
    skipped_partitions: list = field(default_factory=list)
    #: Cooperative cancellation/deadline token (:mod:`repro.cancel`),
    #: consulted on every block access. ``None`` (the default) keeps the
    #: hot path to a single identity check.
    cancel: "object | None" = None

    def __post_init__(self) -> None:
        # Eager decompression is the "never operate on compressed data"
        # ablation; compressed execution is meaningless (and wrong) there.
        if self.decompress_eagerly:
            self.compressed = False

    def begin(self, operator: str) -> Span | None:
        """Open a span for one operator application (None when not tracing).

        Operators guard the matching :meth:`end` with ``if span is not
        None`` so detail kwargs are never even evaluated untraced.
        """
        if self.tracer is None:
            return None
        return self.tracer.begin(operator)

    def end(self, span: Span | None, **detail) -> None:
        """Close a span opened by :meth:`begin`; no-op for None."""
        if span is not None:
            self.tracer.end(span, **detail)

    def abort(self, span: Span | None, error: BaseException, **detail) -> None:
        """Close *span* (and anything still open inside it) as errored.

        The degraded-execution path uses this when it swallows a partition's
        failure: the subtree the exception cut short is truncated in place
        while the rest of the query keeps tracing. No-op when untraced.
        """
        if span is not None:
            self.tracer.unwind(span, error, **detail)

    def read_block(self, column_file: ColumnFile, index: int) -> bytes:
        """Fetch one block payload through the buffer pool, counting a BIC step.

        The tracer rides along so a transient-fault retry inside the pool
        shows up as a ``RETRY`` span under the reading operator.

        This is also the cancellation point: a tripped or expired
        :class:`~repro.cancel.CancelToken` raises here, at a block boundary,
        so a cancelled query unwinds without ever producing a partial
        result.
        """
        if self.cancel is not None:
            self.cancel.check()
        self.stats.block_iterations += 1
        return self.pool.get(column_file, index, self.stats, tracer=self.tracer)

    # ---------------------------------------------------- scan fast-path

    def decode_payload(
        self, column_file: ColumnFile, desc: BlockDescriptor, payload: bytes
    ) -> np.ndarray:
        """Decoded values of one block, served from the decoded cache if on.

        The caller must have fetched *payload* through :meth:`read_block`
        (or a mini-column pin of it) first, so I/O accounting is identical
        whether or not the decode itself is skipped.
        """
        if self.decoded is None:
            return column_file.encoding.decode(payload, desc, column_file.dtype)
        return self.decoded.values(column_file, desc, payload, self.stats)

    def decode_block(
        self, column_file: ColumnFile, desc: BlockDescriptor
    ) -> np.ndarray:
        """Read one block through the pool and decode it (cached when warm)."""
        payload = self.read_block(column_file, desc.index)
        return self.decode_payload(column_file, desc, payload)

    def run_table(
        self, column_file: ColumnFile, desc: BlockDescriptor, payload: bytes
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One block's ``(values, starts, lengths)`` run view, cached when on."""
        if self.decoded is None:
            return column_file.encoding.runs(payload, desc, column_file.dtype)
        return self.decoded.runs(column_file, desc, payload, self.stats)

    def code_table(
        self, column_file: ColumnFile, desc: BlockDescriptor, payload: bytes
    ) -> tuple[np.ndarray, np.ndarray]:
        """One block's dictionary ``(distinct, codes)`` view, cached when on."""
        if self.decoded is None:
            return column_file.encoding.code_table(payload)
        return self.decoded.codes(column_file, desc, payload, self.stats)

    def for_span(
        self, column_file: ColumnFile, desc: BlockDescriptor, payload: bytes
    ):
        """One block's parsed FOR span, cached when on."""
        if self.decoded is None:
            return column_file.encoding.parse_span(payload)
        return self.decoded.for_span(column_file, desc, payload, self.stats)

    def gather_block(
        self,
        column_file: ColumnFile,
        desc: BlockDescriptor,
        payload: bytes,
        positions: np.ndarray,
    ) -> np.ndarray:
        """Values at sorted absolute *positions* (all within this block).

        With the decoded cache on, run-length blocks jump through the cached
        run table and every other encoding indexes the cached decoded array —
        for bit-vector data this turns the per-gather full decompression into
        a one-time cost.
        """
        encoding = column_file.encoding
        if self.decoded is None:
            return encoding.gather(payload, desc, column_file.dtype, positions)
        if encoding.supports_runs:
            values, starts, _lengths = self.run_table(column_file, desc, payload)
            return values[np.searchsorted(starts, positions, side="right") - 1]
        values = self.decode_payload(column_file, desc, payload)
        return values[positions - desc.start_pos]

    # ------------------------------------------------- parallel scan leaves

    def leaf(self) -> "ExecutionContext":
        """A child context for one concurrent scan leaf.

        Shares the pool and decoded cache; gets private stats and span
        tracer (the scheduler merges stats and adopts spans in task order)
        and no scheduler of its own so leaves never nest.
        """
        stats = QueryStats()
        return ExecutionContext(
            pool=self.pool,
            stats=stats,
            use_multicolumns=self.use_multicolumns,
            use_indexes=self.use_indexes,
            decompress_eagerly=self.decompress_eagerly,
            decoded=self.decoded,
            compressed=self.compressed,
            constants=self.constants,
            scheduler=None,
            tracer=SpanTracer(stats) if self.tracer is not None else None,
            on_error=self.on_error,
            quarantine=self.quarantine,
            cancel=self.cancel,
        )

    def map_leaves(
        self, tasks: Sequence[Callable[["ExecutionContext"], object]]
    ) -> list:
        """Run independent scan leaves, concurrently when a scheduler is set.

        Serial fallback executes the tasks in order against this context
        itself, which is bit-identical to the pre-scheduler behaviour.
        """
        if self.scheduler is None or len(tasks) < 2:
            return [task(self) for task in tasks]
        return self.scheduler.run(self, tasks)


def position_groups(positions) -> int:
    """The model's ``||POSLIST|| / RLp``: iterator steps over a position list.

    A contiguous range is one group; a run list is one group per run (the
    structure is explicit, so jumping run to run is free to detect);
    listed/bitmap representations are charged one step per contained
    position (runs inside them are not free to detect).
    """
    from ..positions import RangePositions, RunPositions

    if isinstance(positions, RangePositions):
        return 1 if positions.count() else 0
    if isinstance(positions, RunPositions):
        return positions.n_runs
    return positions.count()


def gather_values(
    ctx: ExecutionContext,
    column_file: ColumnFile,
    positions: np.ndarray,
    minicolumn: MiniColumn | None = None,
    on_the_fly: bool = False,
) -> np.ndarray:
    """DS3 inner loop: values of *column_file* at absolute *positions*.

    Handles unsorted position arrays (the join re-extraction case): they are
    sorted for block-cursor access and the result scattered back, and the
    sort is charged at ``n log n`` function calls — the paper's penalty for
    "out of order positions" after a join ("a merge-join on position cannot
    be used"). With ``on_the_fly=True`` the positions are extracted the
    moment they are produced (the multi-column join's per-match extraction),
    so no positional join happens and no sort penalty is charged — one direct
    jump per position instead.

    When *minicolumn* pins the needed blocks, no buffer-pool access happens at
    all (the multi-column optimization); otherwise blocks covering positions
    are fetched through the pool (hits when the query is properly pipelined)
    and blocks covering no position are skipped.
    """
    stats = ctx.stats
    n = len(positions)
    if n == 0:
        return np.empty(0, dtype=column_file.dtype)

    order = None
    sorted_positions = positions
    if n > 1 and not _is_sorted(positions):
        order = np.argsort(positions, kind="stable")
        sorted_positions = positions[order]
        if on_the_fly:
            stats.function_calls += n  # one direct jump per match
        else:
            # A full positional re-join: sort, jump per position, scatter.
            stats.function_calls += int(n * max(np.log2(n), 1.0))
            stats.column_iterations += 2 * n
            stats.extra["out_of_order_gathers"] = (
                stats.extra.get("out_of_order_gathers", 0) + n
            )

    out = np.empty(n, dtype=column_file.dtype)
    cursor = 0
    for desc in column_file.descriptors:
        if cursor >= n:
            break
        hi = int(np.searchsorted(sorted_positions, desc.end_pos, side="left"))
        if hi <= cursor:
            if desc.start_pos > sorted_positions[-1]:
                break
            stats.blocks_skipped += 1
            continue
        chunk = sorted_positions[cursor:hi]
        if minicolumn is not None and minicolumn.has_block(desc.index):
            payload = minicolumn.payload(desc.index)
            stats.block_iterations += 1
        else:
            payload = ctx.read_block(column_file, desc.index)
        out[cursor:hi] = ctx.gather_block(column_file, desc, payload, chunk)
        cursor = hi

    if order is not None:
        unsorted = np.empty(n, dtype=column_file.dtype)
        unsorted[order] = out
        out = unsorted
    return out


def _is_sorted(arr: np.ndarray) -> bool:
    return bool(np.all(arr[1:] >= arr[:-1]))
