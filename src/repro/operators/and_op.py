"""Position-list AND (paper Section 3.3).

Takes k filtered position sets (or multi-columns) and produces their
intersection. Ranges are intersected first (constant cost), then bitmaps
word-wise, then anything else — the three cases of the paper's model. When the
inputs are multi-columns, the output multi-column unions their mini-column
arrays while intersecting descriptors; copying the mini-column pointers is the
paper's zero-cost operation.
"""

from __future__ import annotations

from ..errors import ExecutionError
from ..multicolumn import MultiColumn
from ..positions import PositionSet, intersect_all
from .base import ExecutionContext, position_groups


def and_groups(positions: PositionSet) -> int:
    """Iterator steps AND spends per input list.

    Ranges are one step; run lists cost one step per run (the compressed
    intersection never expands them); bit-strings are intersected a word at
    a time (the paper's Case 2: ``||inpos|| / 32`` with the processor word
    size); listed positions cost one step each.
    """
    from ..positions import BitmapPositions, RunPositions

    if isinstance(positions, BitmapPositions):
        return (positions.nbits + positions.WORD_BITS - 1) // positions.WORD_BITS
    if isinstance(positions, RunPositions):
        return positions.n_runs
    return position_groups(positions)


class AndOp:
    """Intersect position sets / multi-columns."""

    def __init__(self, ctx: ExecutionContext):
        self.ctx = ctx

    def execute_positions(self, inputs: list[PositionSet]) -> PositionSet:
        if not inputs:
            raise ExecutionError("AND of zero position lists")
        stats = self.ctx.stats
        span = self.ctx.begin("AND")
        groups = [and_groups(p) for p in inputs]
        m = max(groups)
        # Step 1: iterate each input list; steps 2-3: produce the output.
        stats.column_iterations += sum(groups) + m
        stats.function_calls += m * (len(inputs) - 1) + m
        stats.positions_intersected += sum(p.count() for p in inputs)
        from ..positions import BitmapPositions, ListedPositions, RunPositions

        if any(isinstance(p, RunPositions) for p in inputs) and any(
            isinstance(p, (BitmapPositions, ListedPositions)) for p in inputs
        ):
            # A run list meeting a materialized (bitmap/listed) set cannot
            # stay in run form through the intersection: the run side is
            # expanded against the other representation — a morph.
            stats.morphs += 1
        result = intersect_all(inputs)
        if span is not None:
            self.ctx.end(
                span,
                inputs=[p.count() for p in inputs],
                positions=result.count(),
            )
        return result

    def execute_multicolumns(self, inputs: list[MultiColumn]) -> MultiColumn:
        if not inputs:
            raise ExecutionError("AND of zero multi-columns")
        descriptor = self.execute_positions([mc.descriptor for mc in inputs])
        start = max(mc.start for mc in inputs)
        stop = min(mc.stop for mc in inputs)
        merged = MultiColumn(start=start, stop=stop, descriptor=descriptor)
        for mc in inputs:
            for mini in mc.minicolumns.values():
                merged.attach(mini)
        return merged
