"""Data-source operators: the paper's DS cases 1-4 plus SPC.

Each operator reads a column through the buffer pool block by block and
increments the stats counters matching its cost formula (Figures 1-3, 6 of
the paper):

* DS1 — scan + predicate -> positions (LM leaf).
* DS2 — scan + predicate -> (position, value) tuples (EM-pipelined leaf).
* DS3 — positions -> values (LM re-access; free of I/O under multi-columns).
* DS4 — (pos, values...) tuples + predicate -> wider tuples (EM-pipelined).
* SPC — scan all columns, predicate, construct (EM-parallel leaf).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import UnsupportedOperationError
from ..multicolumn import MiniColumn, MultiColumn
from ..positions import (
    ListedPositions,
    PositionSet,
    RangePositions,
    RunPositions,
    from_mask,
    union_all,
)
from ..predicates import Predicate
from ..storage.column_file import ColumnFile
from .base import ExecutionContext, gather_values, position_groups
from .tuples import POSITION_COLUMN, TupleSet


def _concat_position_sets(parts: list[PositionSet], n_rows: int) -> PositionSet:
    """Combine per-block (disjoint, ascending) position sets into one global set."""
    parts = [p for p in parts if not p.is_empty()]
    if not parts:
        return RangePositions.empty()
    if len(parts) == 1:
        return parts[0]
    if any(isinstance(p, RunPositions) for p in parts) and all(
        isinstance(p, (RangePositions, RunPositions)) for p in parts
    ):
        # Compressed scans emit per-block run lists; glue them without ever
        # expanding to per-position arrays (blocks are disjoint and
        # ascending, so a plain concatenation preserves the invariant).
        starts = np.concatenate(
            [
                np.array([p.start], dtype=np.int64)
                if isinstance(p, RangePositions)
                else p.starts
                for p in parts
            ]
        )
        stops = np.concatenate(
            [
                np.array([p.stop], dtype=np.int64)
                if isinstance(p, RangePositions)
                else p.stops
                for p in parts
            ]
        )
        return RunPositions.from_runs(starts, stops)
    if all(isinstance(p, RangePositions) for p in parts):
        glued = []
        for p in parts:
            if glued and glued[-1].stop == p.start:
                glued[-1] = RangePositions(glued[-1].start, p.stop)
            else:
                glued.append(RangePositions(p.start, p.stop))
        if len(glued) == 1:
            return glued[0]
        parts = glued
    arrays = [p.to_array() for p in parts]
    merged = np.concatenate(arrays)
    lo, hi = int(merged[0]), int(merged[-1])
    span = hi - lo + 1
    if merged.size == span:
        return RangePositions(lo, hi + 1)
    if merged.size < span / 64:
        return ListedPositions(merged, assume_sorted=True)
    mask = np.zeros(span, dtype=bool)
    mask[merged - lo] = True
    from ..positions import BitmapPositions

    return BitmapPositions.from_mask(lo, mask)


@dataclass
class ScanResult:
    """Output of a DS1/DS3 scan: surviving positions plus optional extras."""

    positions: PositionSet
    minicolumn: MiniColumn | None = None
    values: np.ndarray | None = None

    def as_multicolumn(self, n_rows: int) -> MultiColumn:
        mc = MultiColumn(start=0, stop=n_rows, descriptor=self.positions)
        if self.minicolumn is not None:
            mc.attach(self.minicolumn)
        return mc


class DS1Scan:
    """DS Case 1: scan a column, apply a predicate, output positions.

    With ``ctx.use_multicolumns`` the payloads touched are pinned into a
    mini-column so later value extraction never re-reads the column.

    When the column has a clustered index and the predicate resolves to a
    single position range, the scan is skipped entirely — "the original
    column values never have to be accessed" (paper Section 2.1.1).
    """

    def __init__(
        self,
        ctx: ExecutionContext,
        column_file: ColumnFile,
        predicate: Predicate,
        skip_blocks: bool = True,
        index=None,
    ):
        self.ctx = ctx
        self.column_file = column_file
        self.predicate = predicate
        self.skip_blocks = skip_blocks
        self.index = index

    def _index_positions(self) -> PositionSet | None:
        if self.index is None or not self.ctx.use_indexes:
            return None
        parts = getattr(self.predicate, "predicates", (self.predicate,))
        result: PositionSet | None = None
        for part in parts:
            in_values = getattr(part, "in_values", None)
            if in_values is not None:
                # IN over a clustered column: one range per listed value,
                # OR-ed together (the paper's bitmap-index OR, on ranges).
                hit = union_all(
                    [self.index.lookup_range(v, v) for v in in_values]
                )
            else:
                hit = self.index.lookup(part)
            if hit is None:
                return None
            result = hit if result is None else result.intersect(hit)
        return result

    def execute(self) -> ScanResult:
        ctx, cf, pred = self.ctx, self.column_file, self.predicate
        stats = ctx.stats
        span = ctx.begin("DS1")
        from_index = self._index_positions()
        if from_index is not None:
            stats.extra["index_lookups"] = (
                stats.extra.get("index_lookups", 0) + 1
            )
            if span is not None:
                ctx.end(
                    span,
                    column=cf.column,
                    predicate=str(pred),
                    via="index",
                    positions=from_index.count(),
                )
            return ScanResult(positions=from_index, minicolumn=None)
        # Imported lazily: the kernels pull in the model package, which
        # reaches back into the operators during its own initialisation.
        from ..compressed.kernels import has_kernel, scan_block_compressed

        mini = MiniColumn(cf) if ctx.use_multicolumns else None
        parts: list[PositionSet] = []
        for desc in cf.descriptors:
            if self.skip_blocks and not pred.overlaps_range(
                desc.min_value, desc.max_value
            ):
                stats.blocks_skipped += 1
                continue
            payload = ctx.read_block(cf, desc.index)
            if mini is not None:
                mini.pin(desc, payload)
            steps = (
                desc.n_values
                if ctx.decompress_eagerly
                else cf.encoding.stats_run_count(payload, desc)
            )
            stats.values_scanned += desc.n_values
            stats.column_iterations += steps
            stats.function_calls += steps  # predicate application per step
            block_positions = None
            if ctx.compressed and has_kernel(cf.encoding.name):
                # Compressed execution: evaluate the predicate in the block's
                # encoded domain (run table / code table / FOR offsets). The
                # kernel returns None when the stay-vs-morph model says the
                # decoded path below is cheaper — that fall-through *is* the
                # morph, served by the same decoded cache as the fast path.
                block_positions = scan_block_compressed(
                    ctx, cf, desc, payload, pred
                )
                if block_positions is not None:
                    stats.compressed_scans += 1
                else:
                    stats.morphs += 1
            if block_positions is None:
                if (
                    ctx.decoded is not None
                    and cf.encoding.decoded_scan_equivalent
                ):
                    # Scan fast-path (and the morph target of the kernel
                    # dispatch above): mask the cached decoded array.
                    # Produces the same positions in the same representation
                    # as the codec's own scan, but skips the per-block
                    # decode/expand kernel on every warm access.
                    values = ctx.decode_payload(cf, desc, payload)
                    block_positions = from_mask(
                        desc.start_pos, pred.mask(values)
                    )
                else:
                    block_positions = cf.encoding.scan_positions(
                        payload, desc, cf.dtype, pred
                    )
            stats.function_calls += block_positions.count()  # emit matches
            parts.append(block_positions)
        positions = _concat_position_sets(parts, cf.n_values)
        if span is not None:
            ctx.end(
                span,
                column=cf.column,
                predicate=str(pred),
                via="scan",
                positions=positions.count(),
            )
        return ScanResult(positions=positions, minicolumn=mini)


class DS2Scan:
    """DS Case 2: scan + predicate, output (position, value) pair tuples."""

    def __init__(
        self,
        ctx: ExecutionContext,
        column_file: ColumnFile,
        predicate: Predicate | None,
        skip_blocks: bool = True,
    ):
        self.ctx = ctx
        self.column_file = column_file
        self.predicate = predicate
        self.skip_blocks = skip_blocks

    def execute(self) -> TupleSet:
        ctx, cf, pred = self.ctx, self.column_file, self.predicate
        stats = ctx.stats
        span = ctx.begin("DS2")
        pos_parts: list[np.ndarray] = []
        val_parts: list[np.ndarray] = []
        for desc in cf.descriptors:
            if (
                self.skip_blocks
                and pred is not None
                and not pred.overlaps_range(desc.min_value, desc.max_value)
            ):
                stats.blocks_skipped += 1
                continue
            payload = ctx.read_block(cf, desc.index)
            steps = (
                desc.n_values
                if ctx.decompress_eagerly
                else cf.encoding.stats_run_count(payload, desc)
            )
            stats.values_scanned += desc.n_values
            stats.column_iterations += steps
            stats.function_calls += steps
            if ctx.decoded is not None and cf.encoding.decoded_pairs_equivalent:
                # Scan fast-path: pairs from the cached decoded array — one
                # decode per block ever, instead of one per scan.
                decoded = ctx.decode_payload(cf, desc, payload)
                if pred is None:
                    positions = RangePositions(desc.start_pos, desc.end_pos)
                    values = decoded
                else:
                    mask = pred.mask(decoded)
                    positions = from_mask(desc.start_pos, mask)
                    values = decoded[mask]
            else:
                positions, values = cf.encoding.scan_pairs(
                    payload, desc, cf.dtype, pred
                )
            matched = len(values)
            # Gluing positions and values together costs TICTUP + FC per
            # surviving tuple (Case 2, step 5).
            stats.tuple_iterations += matched
            stats.function_calls += matched
            pos_parts.append(positions.to_array())
            val_parts.append(values)
        pos = (
            np.concatenate(pos_parts) if pos_parts else np.empty(0, dtype=np.int64)
        )
        vals = (
            np.concatenate(val_parts)
            if val_parts
            else np.empty(0, dtype=cf.dtype)
        )
        result = TupleSet.stitch(
            {POSITION_COLUMN: pos, cf.column: vals}, stats=stats
        )
        if span is not None:
            ctx.end(
                span,
                column=cf.column,
                predicate=str(pred) if pred is not None else None,
                tuples=len(pos),
            )
        return result


class DS3Gather:
    """DS Case 3: extract a column's values at a list of positions.

    Optionally applies a predicate to the extracted values (the LM-pipelined
    inner step), returning the narrowed positions alongside the values.
    """

    def __init__(
        self,
        ctx: ExecutionContext,
        column_file: ColumnFile,
        positions: PositionSet,
        minicolumn: MiniColumn | None = None,
        predicate: Predicate | None = None,
    ):
        if predicate is not None and not column_file.encoding.supports_position_filtering:
            raise UnsupportedOperationError(
                f"DS3 cannot position-filter a {column_file.encoding.name} column"
            )
        self.ctx = ctx
        self.column_file = column_file
        self.positions = positions
        self.minicolumn = minicolumn
        self.predicate = predicate

    def execute(self) -> ScanResult:
        ctx, cf = self.ctx, self.column_file
        stats = ctx.stats
        span = ctx.begin("DS3" if self.predicate is None else "DS3+filter")
        groups = position_groups(self.positions)
        if cf.encoding.supports_runs and not ctx.decompress_eagerly:
            # Extraction from run-length data jumps run to run, not value to
            # value (searchsorted over run starts): the per-step count is
            # bounded by the runs touched — operating directly on compressed
            # data, the heart of the Figure 11(b) result.
            run_bound = (
                int(self.positions.count() / max(cf.avg_run_length, 1.0))
                + cf.n_blocks
            )
            groups = min(groups, run_bound)
        # Case 3 steps 3+4: iterate the position list, jump and extract.
        stats.column_iterations += 2 * groups
        stats.function_calls += groups
        pos_array = self.positions.to_array()
        values = gather_values(ctx, cf, pos_array, minicolumn=self.minicolumn)
        if self.predicate is None:
            if span is not None:
                ctx.end(
                    span,
                    column=cf.column,
                    positions=len(pos_array),
                    pinned=self.minicolumn is not None,
                )
            return ScanResult(
                positions=self.positions, minicolumn=self.minicolumn, values=values
            )
        mask = self.predicate.mask(values)
        stats.function_calls += len(values)
        stats.values_scanned += len(values)
        kept = pos_array[mask]
        if span is not None:
            ctx.end(
                span,
                column=cf.column,
                predicate=str(self.predicate),
                positions_in=len(pos_array),
                positions_out=int(mask.sum()),
            )
        return ScanResult(
            positions=ListedPositions(kept, assume_sorted=True)
            if kept.size
            else RangePositions.empty(),
            minicolumn=self.minicolumn,
            values=values[mask],
        )


class DS4Scan:
    """DS Case 4: extend EM tuples with one more column, filtering as we go."""

    def __init__(
        self,
        ctx: ExecutionContext,
        column_file: ColumnFile,
        predicate: Predicate | None,
        tuples: TupleSet,
    ):
        self.ctx = ctx
        self.column_file = column_file
        self.predicate = predicate
        self.tuples = tuples

    def execute(self) -> TupleSet:
        ctx, cf = self.ctx, self.column_file
        stats = ctx.stats
        span = ctx.begin("DS4")
        tuples = self.tuples
        n_em = tuples.n_tuples
        positions = tuples.positions
        # Case 4 steps 3-4: iterate EM tuples, jump into the column.
        stats.tuple_iterations += 2 * n_em
        stats.function_calls += 2 * n_em
        values = gather_values(ctx, cf, positions)
        if self.predicate is not None:
            mask = self.predicate.mask(values)
            stats.values_scanned += n_em
            matched = int(mask.sum())
            stats.tuple_iterations += matched  # step 5: output <e, t>
            result = tuples.filter(mask).extend(
                cf.column, values[mask], stats=stats
            )
            if span is not None:
                ctx.end(
                    span,
                    column=cf.column,
                    predicate=str(self.predicate),
                    tuples_in=n_em,
                    tuples_out=matched,
                )
            return result
        stats.tuple_iterations += n_em
        result = tuples.extend(cf.column, values, stats=stats)
        if span is not None:
            ctx.end(
                span, column=cf.column, predicate=None, tuples_in=n_em,
                tuples_out=n_em,
            )
        return result


class SPCScan:
    """Scan/Predicate/Construct: the EM-parallel leaf (paper Figure 6).

    Reads and processes *every* block of *every* input column, applies the
    predicates column-at-a-time with short-circuiting, then constructs tuples
    for the rows passing all predicates.
    """

    def __init__(
        self,
        ctx: ExecutionContext,
        column_files: dict[str, ColumnFile],
        predicates: list[Predicate],
        with_positions: bool = False,
    ):
        self.ctx = ctx
        self.column_files = column_files
        self.predicates = predicates
        self.with_positions = with_positions

    @staticmethod
    def _decode_full(ctx: ExecutionContext, cf: ColumnFile) -> np.ndarray:
        stats = ctx.stats
        parts = []
        for desc in cf.descriptors:
            payload = ctx.read_block(cf, desc.index)
            stats.column_iterations += (
                desc.n_values
                if ctx.decompress_eagerly
                else cf.encoding.stats_run_count(payload, desc)
            )
            parts.append(ctx.decode_payload(cf, desc, payload))
        if not parts:
            return np.empty(0, dtype=cf.dtype)
        return np.concatenate(parts)

    def execute(self) -> TupleSet:
        stats = self.ctx.stats
        span = self.ctx.begin("SPC")
        # The per-column full scans are SPC's independent leaves: no data
        # dependencies, so the scheduler (when configured) overlaps them.
        names = list(self.column_files)
        arrays = self.ctx.map_leaves(
            [
                (lambda leaf_ctx, cf=cf: self._decode_full(leaf_ctx, cf))
                for cf in self.column_files.values()
            ]
        )
        decoded = dict(zip(names, arrays))
        preds_by_column: dict[str, list[Predicate]] = {}
        for pred in self.predicates:
            preds_by_column.setdefault(pred.column, []).append(pred)

        n_rows = min((len(v) for v in decoded.values()), default=0)
        mask = np.ones(n_rows, dtype=bool)
        # Step 4: check predicates, each column only over rows still alive.
        for name, preds in preds_by_column.items():
            values = decoded[name]
            alive = int(mask.sum())
            stats.function_calls += alive
            stats.values_scanned += alive
            for pred in preds:
                mask &= pred.mask(values)

        stitched = {name: decoded[name][mask] for name in self.column_files}
        if self.with_positions:
            stitched = {POSITION_COLUMN: np.nonzero(mask)[0].astype(np.int64)} | (
                stitched
            )
        result = TupleSet.stitch(stitched, stats=stats)
        # Step 5: constructing each surviving tuple is a tuple-iterator step.
        stats.tuple_iterations += result.n_tuples
        if span is not None:
            self.ctx.end(
                span,
                columns=list(self.column_files),
                predicates=[str(p) for p in self.predicates],
                tuples=result.n_tuples,
            )
        return result
