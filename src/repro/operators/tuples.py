"""Row-store-style tuples for early materialization.

A :class:`TupleSet` stores n-attribute tuples in a single row-major 2D int64
array — genuinely interleaved like a row store page, so that per-column access
is strided and stitching requires a real copy. Early materialization pays
these costs; late materialization avoids them until the final merge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ExecutionError

POSITION_COLUMN = "_pos"


@dataclass
class TupleSet:
    """A batch of row-major tuples.

    Attributes:
        columns: attribute name per tuple slot, in slot order. The reserved
            name ``_pos`` carries the tuple's original position for plans
            (EM-pipelined) that still need to jump into other columns.
        data: int64 array of shape (n_tuples, len(columns)), row-major.
    """

    columns: tuple[str, ...]
    data: np.ndarray

    def __post_init__(self):
        if self.data.ndim != 2 or self.data.shape[1] != len(self.columns):
            raise ExecutionError(
                f"tuple data shape {self.data.shape} does not match "
                f"{len(self.columns)} columns"
            )

    @classmethod
    def stitch(cls, columns: dict[str, np.ndarray], stats=None) -> "TupleSet":
        """Construct tuples from parallel value vectors (the expensive copy).

        Interleaves the vectors into one row-major block and counts each
        produced tuple as constructed.
        """
        names = tuple(columns)
        arrays = [np.asarray(columns[name], dtype=np.int64) for name in names]
        lengths = {len(a) for a in arrays}
        if len(lengths) > 1:
            raise ExecutionError(f"stitch inputs differ in length: {lengths}")
        n = lengths.pop() if lengths else 0
        data = np.empty((n, len(names)), dtype=np.int64)
        for i, arr in enumerate(arrays):
            data[:, i] = arr
        if stats is not None:
            stats.tuples_constructed += n
        return cls(columns=names, data=data)

    @classmethod
    def empty(cls, columns: tuple[str, ...]) -> "TupleSet":
        return cls(columns=columns, data=np.empty((0, len(columns)), dtype=np.int64))

    @property
    def n_tuples(self) -> int:
        return self.data.shape[0]

    def column_index(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise ExecutionError(
                f"tuple set has no column {name!r} (has {self.columns})"
            ) from None

    def column(self, name: str) -> np.ndarray:
        """Strided view of one attribute across all tuples."""
        return self.data[:, self.column_index(name)]

    @property
    def positions(self) -> np.ndarray:
        return self.column(POSITION_COLUMN)

    def filter(self, mask: np.ndarray) -> "TupleSet":
        """Keep tuples where *mask* is True (row-major copy)."""
        return TupleSet(columns=self.columns, data=self.data[mask])

    def extend(self, name: str, values: np.ndarray, stats=None) -> "TupleSet":
        """Widen every tuple by one attribute (re-materializes each row)."""
        n = self.n_tuples
        data = np.empty((n, len(self.columns) + 1), dtype=np.int64)
        data[:, : len(self.columns)] = self.data
        data[:, -1] = values
        if stats is not None:
            stats.tuples_constructed += n
        return TupleSet(columns=self.columns + (name,), data=data)

    def without(self, name: str) -> "TupleSet":
        """Project away one attribute (used to drop ``_pos`` before output)."""
        idx = self.column_index(name)
        keep = [i for i in range(len(self.columns)) if i != idx]
        return TupleSet(
            columns=tuple(c for c in self.columns if c != name),
            data=np.ascontiguousarray(self.data[:, keep]),
        )

    def select(self, names: list[str]) -> "TupleSet":
        """Project to the given attributes, in order."""
        idx = [self.column_index(n) for n in names]
        return TupleSet(
            columns=tuple(names), data=np.ascontiguousarray(self.data[:, idx])
        )

    def rows(self) -> list[tuple[int, ...]]:
        """Materialise as Python tuples (tests and small outputs only)."""
        return [tuple(int(v) for v in row) for row in self.data]

    @classmethod
    def concat(cls, parts: list["TupleSet"]) -> "TupleSet":
        if not parts:
            raise ExecutionError("concat of zero tuple sets")
        cols = parts[0].columns
        for p in parts[1:]:
            if p.columns != cols:
                raise ExecutionError("concat of mismatched tuple sets")
        return cls(columns=cols, data=np.vstack([p.data for p in parts]))
