"""Join operators and the three inner-table materialization strategies.

The paper (Section 4.3) evaluates a foreign-key/primary-key join with three
representations of the right (inner) table input:

* **materialized** — the right side arrives as constructed tuples; the join
  outputs right-tuple values directly plus an *ordered* list of left
  positions (the hybrid approach of the paper).
* **multi-column** — the right side arrives as an unmaterialized multi-column;
  values of non-key columns are extracted on the fly for matching rows only.
* **single column** — "pure" late materialization: only the right join-key
  column enters the join; the output is a pair of position lists, and the
  right positions come out *unordered*, making later value extraction on the
  right side an expensive out-of-order positional join.

All three share a probe kernel over the unique right key (PK) column.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ExecutionError
from ..multicolumn import MultiColumn
from ..storage.column_file import ColumnFile
from .base import ExecutionContext, gather_values
from .tuples import TupleSet


@dataclass
class JoinPositions:
    """Positional join output: pairs (left_positions[i], right_positions[i]).

    ``left_positions`` is sorted (the outer side is iterated in order);
    ``right_positions`` is in probe order, i.e. generally *unsorted*.
    """

    left_positions: np.ndarray
    right_positions: np.ndarray

    @property
    def n_matches(self) -> int:
        return len(self.left_positions)


def _probe(
    ctx: ExecutionContext,
    left_keys: np.ndarray,
    right_keys: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Probe unique *right_keys* with *left_keys*.

    Returns ``(left_mask, right_index)``: a mask over left rows that found a
    match, and for each matching left row the right row index holding its key.
    """
    stats = ctx.stats
    stats.column_iterations += len(right_keys)  # build pass over the inner keys
    stats.function_calls += len(right_keys)
    stats.column_iterations += len(left_keys)  # probe pass
    stats.function_calls += len(left_keys)
    order = np.argsort(right_keys, kind="stable")
    sorted_keys = right_keys[order]
    slot = np.searchsorted(sorted_keys, left_keys)
    slot_clamped = np.minimum(slot, len(sorted_keys) - 1) if len(sorted_keys) else slot
    if len(sorted_keys) == 0:
        return np.zeros(len(left_keys), dtype=bool), np.empty(0, dtype=np.int64)
    left_mask = sorted_keys[slot_clamped] == left_keys
    right_index = order[slot_clamped[left_mask]]
    return left_mask, right_index


def join_single_column(
    ctx: ExecutionContext,
    left_keys: np.ndarray,
    left_positions: np.ndarray,
    right_keys: np.ndarray,
) -> JoinPositions:
    """Pure-LM join: only join-key columns in, position pairs out."""
    span = ctx.begin("JOIN")
    left_mask, right_index = _probe(ctx, left_keys, right_keys)
    ctx.stats.extra["join_matches"] = (
        ctx.stats.extra.get("join_matches", 0) + int(left_mask.sum())
    )
    if span is not None:
        ctx.end(
            span,
            inner="single-column",
            left_in=len(left_keys),
            right_in=len(right_keys),
            matches=int(left_mask.sum()),
        )
    return JoinPositions(
        left_positions=left_positions[left_mask],
        right_positions=right_index.astype(np.int64),
    )


def join_materialized(
    ctx: ExecutionContext,
    left_keys: np.ndarray,
    left_positions: np.ndarray,
    right_tuples: TupleSet,
    right_key: str,
) -> tuple[np.ndarray, TupleSet]:
    """Hybrid join: right side pre-materialized, left side positional.

    Returns the ordered surviving left positions and, parallel to them, the
    matching right tuples (a row gather from the materialized inner table).
    """
    stats = ctx.stats
    span = ctx.begin("JOIN")
    right_keys = right_tuples.column(right_key)
    left_mask, right_index = _probe(ctx, left_keys, right_keys)
    n = int(left_mask.sum())
    # Emitting a row-store tuple per match.
    stats.tuple_iterations += n
    stats.tuples_constructed += n
    matched = TupleSet(
        columns=right_tuples.columns, data=right_tuples.data[right_index]
    )
    if span is not None:
        ctx.end(
            span,
            inner="materialized",
            left_in=len(left_keys),
            right_in=len(right_keys),
            matches=n,
        )
    return left_positions[left_mask], matched


def join_multicolumn(
    ctx: ExecutionContext,
    left_keys: np.ndarray,
    left_positions: np.ndarray,
    right_mc: MultiColumn,
    right_files: dict[str, ColumnFile],
    right_key: str,
    extract_columns: list[str],
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Hybrid join with a multi-column inner table.

    The key column is extracted from the pinned mini-columns for probing; for
    each match the other relevant columns are extracted on the fly at the
    matching position — constructing values only for tuples that join.
    """
    stats = ctx.stats
    span = ctx.begin("JOIN")
    valid = right_mc.descriptor.to_array()
    key_file = right_files[right_key]
    key_values = gather_values(
        ctx, key_file, valid, minicolumn=right_mc.minicolumns.get(right_key)
    )
    stats.column_iterations += len(valid)
    left_mask, right_index = _probe(ctx, left_keys, key_values)
    matched_positions = valid[right_index]
    out: dict[str, np.ndarray] = {right_key: key_values[right_index]}
    for name in extract_columns:
        mini = right_mc.minicolumns.get(name)
        # Extraction happens the moment each match is found — a direct jump
        # into the pinned mini-column, not a deferred positional join.
        out[name] = gather_values(
            ctx,
            right_files[name],
            matched_positions,
            minicolumn=mini,
            on_the_fly=True,
        )
    if span is not None:
        ctx.end(
            span,
            inner="multi-column",
            left_in=len(left_keys),
            right_in=len(valid),
            matches=len(matched_positions),
        )
    return left_positions[left_mask], out


def fetch_right_columns(
    ctx: ExecutionContext,
    join: JoinPositions,
    right_files: dict[str, ColumnFile],
    columns: list[str],
) -> dict[str, np.ndarray]:
    """Complete a pure-LM join: extract right columns at *unordered* positions.

    This is the expensive step Figure 13 isolates — the positions cannot be
    merge-joined against the column, so the gather must sort and scatter.
    """
    out = {}
    for name in columns:
        out[name] = gather_values(ctx, right_files[name], join.right_positions)
    return out


def hash_join_tuples(
    ctx: ExecutionContext,
    left: TupleSet,
    right: TupleSet,
    left_key: str,
    right_key: str,
) -> TupleSet:
    """Fully early-materialized join: tuples in, tuples out (row-store style)."""
    stats = ctx.stats
    span = ctx.begin("JOIN")
    left_keys = left.column(left_key)
    left_mask, right_index = _probe(ctx, left_keys, right.column(right_key))
    stats.tuple_iterations += left.n_tuples + right.n_tuples
    left_rows = left.data[left_mask]
    right_rows = right.data[right_index]
    right_cols = [c for c in right.columns if c != right_key]
    right_keep = [right.column_index(c) for c in right_cols]
    data = np.hstack([left_rows, right_rows[:, right_keep]])
    out = TupleSet(columns=left.columns + tuple(right_cols), data=data)
    stats.tuples_constructed += out.n_tuples
    stats.tuple_iterations += out.n_tuples
    if span is not None:
        ctx.end(
            span,
            inner="tuples",
            left_in=left.n_tuples,
            right_in=right.n_tuples,
            matches=out.n_tuples,
        )
    return out


def merge_fetch_left(
    ctx: ExecutionContext,
    left_positions: np.ndarray,
    left_files: dict[str, ColumnFile],
    columns: list[str],
) -> dict[str, np.ndarray]:
    """Fetch left-side columns at the join's ordered left positions.

    Because the left positions stay sorted, this is a standard merge join on
    position — the cheap side of the asymmetry Section 4.3 describes.
    """
    if len(left_positions) > 1 and not np.all(np.diff(left_positions) >= 0):
        raise ExecutionError("left join positions must be sorted")
    return {
        name: gather_values(ctx, left_files[name], left_positions)
        for name in columns
    }
