"""Block-oriented query operators (C-Store executor, paper Section 3).

The operator set matches the paper's:

* :class:`DS1Scan` … :class:`DS4Scan` — the four data-source cases (scan to
  positions, scan to position/value tuples, positional gather, positional
  tuple extension).
* :class:`SPCScan` — Scan/Predicate/Construct, the EM-parallel leaf.
* :class:`AndOp` — position-list intersection.
* :class:`MergeOp` — n-ary stitch of value streams into output tuples.
* :class:`AggregateEM` / :class:`AggregateLM` — aggregation over constructed
  tuples vs. directly over (compressed) columns.
* join operators in :mod:`.joins` — the three inner-table materialization
  strategies of Section 4.3.

Operators execute column-at-a-time over physical 64 KB blocks fetched through
the buffer pool, incrementing the :class:`~repro.metrics.QueryStats` counters
that correspond to the analytical model's cost terms.
"""

from .base import ExecutionContext, gather_values
from .tuples import TupleSet
from .datasource import DS1Scan, DS2Scan, DS3Gather, DS4Scan, SPCScan
from .and_op import AndOp
from .merge import MergeOp
from .aggregate import AggregateEM, AggregateLM
from .joins import (
    JoinPositions,
    hash_join_tuples,
    join_single_column,
    join_multicolumn,
    join_materialized,
)
from .output import drain

__all__ = [
    "ExecutionContext",
    "gather_values",
    "TupleSet",
    "DS1Scan",
    "DS2Scan",
    "DS3Gather",
    "DS4Scan",
    "SPCScan",
    "AndOp",
    "MergeOp",
    "AggregateEM",
    "AggregateLM",
    "JoinPositions",
    "hash_join_tuples",
    "join_single_column",
    "join_multicolumn",
    "join_materialized",
    "drain",
]
