"""Utilities for testing code that builds on this library.

Downstream users (and this repository's own suites) need throwaway
projections with controllable shape: sortedness, cardinality, encodings.
:func:`make_random_projection` builds one deterministically from a seed and
returns the raw arrays alongside, so expected answers can be computed with
plain numpy.
"""

from __future__ import annotations

import numpy as np

from .dtypes import INT32, INT64, ColumnSchema
from .engine import Database
from .storage.projection import Projection


def make_random_projection(
    db: Database,
    name: str = "t",
    n_rows: int = 10_000,
    n_value_columns: int = 2,
    cardinality: int = 100,
    seed: int = 0,
    encodings: dict[str, list[str]] | None = None,
    anchor: str | None = None,
) -> tuple[Projection, dict[str, np.ndarray]]:
    """Create a sorted test projection; returns (projection, raw columns).

    The projection has a sorted int64 key column ``k`` (RLE + uncompressed)
    and ``n_value_columns`` int32 columns ``v0..`` drawn uniformly from
    ``[0, cardinality)``. Pass *encodings* to override the physical design.

    Args:
        db: target database.
        name: projection name.
        n_rows: row count.
        n_value_columns: number of ``v*`` payload columns.
        cardinality: value domain size for every column.
        seed: RNG seed (same seed, same data).
        encodings: column -> encoding list override.
        anchor: optional logical table to anchor the projection to.
    """
    rng = np.random.default_rng(seed)
    data: dict[str, np.ndarray] = {
        "k": np.sort(rng.integers(0, cardinality, size=n_rows)).astype(
            np.int64
        )
    }
    schemas: dict[str, ColumnSchema] = {"k": ColumnSchema("k", INT64)}
    default_encodings: dict[str, list[str]] = {"k": ["rle", "uncompressed"]}
    for i in range(n_value_columns):
        col = f"v{i}"
        data[col] = rng.integers(0, cardinality, size=n_rows).astype(np.int32)
        schemas[col] = ColumnSchema(col, INT32)
        default_encodings[col] = ["uncompressed"]
    projection = db.catalog.create_projection(
        name,
        data,
        schemas=schemas,
        sort_keys=["k"],
        encodings=encodings or default_encodings,
        presorted=True,
        anchor=anchor,
    )
    return projection, data


def assert_queries_agree(db: Database, query, strategies=None) -> int:
    """Run *query* under every strategy; assert identical sorted answers.

    Returns the row count. Strategies that legitimately refuse
    (UnsupportedOperationError) are skipped; at least two must run.
    """
    from .errors import UnsupportedOperationError
    from .planner import Strategy

    results = []
    for strategy in strategies or list(Strategy):
        try:
            result = db.query(query, strategy=strategy, cold=True)
        except UnsupportedOperationError:
            continue
        data = result.tuples.data
        order = np.lexsort(tuple(data[:, i] for i in range(data.shape[1] - 1, -1, -1))) \
            if data.size else np.empty(0, dtype=np.int64)
        results.append(data[order])
    assert len(results) >= 2, "fewer than two strategies could run"
    for other in results[1:]:
        assert np.array_equal(results[0], other)
    return len(results[0])
