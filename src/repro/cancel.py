"""Cooperative cancellation and per-query deadlines.

A :class:`CancelToken` is a tiny thread-safe flag shared between whoever
wants a query stopped (a serving-layer timeout, a disconnecting client, an
operator Ctrl-C handler) and the execution engine. The engine checks the
token at block-access granularity — :meth:`ExecutionContext.read_block
<repro.operators.base.ExecutionContext.read_block>` calls :meth:`check` on
every buffer-pool access, warm or cold — so cancellation is prompt (a block
is the engine's smallest unit of work) without instrumenting every operator
inner loop.

The contract is all-or-nothing: a cancelled query raises
:class:`~repro.errors.QueryCancelledError` (or its subclass
:class:`~repro.errors.QueryTimeoutError` for deadline expiry) out of
``Database.query``; the engine's error path truncates the span tree cleanly
(``exc.spans`` when traced), and no partial :class:`~repro.engine.QueryResult`
ever escapes. Deadlines are measured from token construction, so a token
created at admission time naturally charges queue wait against the budget.
"""

from __future__ import annotations

import time

from .errors import QueryCancelledError, QueryTimeoutError


class CancelToken:
    """Shared cancel/deadline flag for one query execution.

    Args:
        timeout_ms: optional deadline, in milliseconds from construction.
            ``None`` means no deadline (the token only trips if
            :meth:`cancel` is called).
        clock: monotonic time source, injectable for tests.

    Thread-safety: :meth:`cancel` may be called from any thread while the
    query runs on another; the flag is a single attribute write (atomic
    under the GIL) and :meth:`check` only reads, so no lock is needed on
    the per-block hot path.
    """

    __slots__ = ("_cancelled", "_reason", "_clock", "_start", "timeout_ms")

    def __init__(self, timeout_ms: float | None = None, clock=time.monotonic):
        self._cancelled = False
        self._reason: str | None = None
        self._clock = clock
        self._start = clock()
        self.timeout_ms = timeout_ms

    # --------------------------------------------------------------- control

    def cancel(self, reason: str = "cancelled") -> None:
        """Trip the token; every subsequent :meth:`check` raises."""
        self._reason = reason
        self._cancelled = True

    # --------------------------------------------------------------- queries

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called (deadline not consulted)."""
        return self._cancelled

    def elapsed_ms(self) -> float:
        """Milliseconds since the token was created."""
        return (self._clock() - self._start) * 1000.0

    def expired(self) -> bool:
        """Whether the deadline (if any) has passed."""
        return (
            self.timeout_ms is not None
            and self.elapsed_ms() > self.timeout_ms
        )

    def remaining_ms(self) -> float | None:
        """Milliseconds left before the deadline; None without one."""
        if self.timeout_ms is None:
            return None
        return max(0.0, self.timeout_ms - self.elapsed_ms())

    def check(self) -> None:
        """Raise if the token is tripped or the deadline has passed.

        The engine calls this at every block access; anything else doing
        long cancellable work can call it at its own natural boundaries.
        """
        if self._cancelled:
            raise QueryCancelledError(
                f"query cancelled: {self._reason or 'cancelled'}"
            )
        if self.expired():
            raise QueryTimeoutError(
                f"query exceeded its {self.timeout_ms:g} ms deadline "
                f"({self.elapsed_ms():.1f} ms elapsed)"
            )
