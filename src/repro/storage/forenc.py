"""Frame-of-reference (FOR) column encoding.

Each block stores a reference value (the block minimum) and bit-packed
offsets from it, using the narrowest bit width that covers the block's value
range. A classic light-weight scheme from the C-Store compression family:
decoding is a vectorised unpack + add, predicates translate to offset-space
comparisons, and positional gathers unpack only the requested positions'
words.

Effective on clustered numeric data (timestamps, sequence numbers, sorted
keys) where per-block ranges are far narrower than the column's domain.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .block import BLOCK_SIZE, BlockDescriptor
from .encoding import EncodedBlock, Encoding, register_encoding

_HEADER_BYTES = 24  # int64 reference, uint64 bit width, uint64 n_values

#: Supported packed widths; values are rounded up to one of these so packing
#: stays byte-aligned numpy work instead of true bit twiddling.
_WIDTHS = (0, 8, 16, 32, 64)


def _width_for_range(value_range: int) -> int:
    for width in _WIDTHS:
        if width == 64 or value_range < (1 << width if width else 1):
            return width
    return 64  # pragma: no cover - loop always returns


def _packed_dtype(width: int) -> np.dtype:
    return np.dtype(f"<u{width // 8}")


class FORSpan:
    """Internal helper: one block's reference + packed offsets."""

    __slots__ = ("reference", "width", "n", "offsets")

    def __init__(self, reference: int, width: int, n: int, offsets: np.ndarray):
        self.reference = reference
        self.width = width
        self.n = n
        self.offsets = offsets


class FrameOfReferenceEncoding(Encoding):
    """Per-block minimum + narrow fixed-width offsets."""

    name = "for"
    supports_position_filtering = True
    supports_runs = False

    def _values_per_block(self, width: int) -> int:
        if width == 0:
            # A constant block: offsets occupy no space; cap the coverage so
            # descriptors stay balanced.
            return BLOCK_SIZE
        return (BLOCK_SIZE - _HEADER_BYTES) // (width // 8)

    def encode(
        self, values: np.ndarray, dtype: np.dtype, start_pos: int = 0
    ) -> Iterator[EncodedBlock]:
        values = np.ascontiguousarray(values, dtype=dtype)
        if len(values) == 0:
            return
        off = 0
        while off < len(values):
            # Greedy: size the block for the width of a candidate window,
            # then re-check (a wider value inside shrinks the window).
            window = values[off : off + BLOCK_SIZE]
            width = _width_for_range(int(window.max()) - int(window.min()))
            per_block = self._values_per_block(width)
            chunk = values[off : off + per_block]
            reference = int(chunk.min())
            width = _width_for_range(int(chunk.max()) - reference)
            per_block = self._values_per_block(width)
            chunk = values[off : off + per_block]
            reference = int(chunk.min())
            offsets = (chunk.astype(np.int64) - reference)
            if width:
                packed = offsets.astype(_packed_dtype(width)).tobytes()
            else:
                packed = b""
            payload = (
                np.array([reference], dtype=np.int64).tobytes()
                + np.array([width, len(chunk)], dtype=np.uint64).tobytes()
                + packed
            )
            yield EncodedBlock(
                payload=payload,
                start_pos=start_pos + off,
                n_values=len(chunk),
                min_value=float(chunk.min()),
                max_value=float(chunk.max()),
            )
            off += len(chunk)

    def _parse(self, payload: bytes) -> FORSpan:
        reference = int(np.frombuffer(payload, dtype=np.int64, count=1)[0])
        meta = np.frombuffer(payload, dtype=np.uint64, count=2, offset=8)
        width, n = int(meta[0]), int(meta[1])
        if width:
            offsets = np.frombuffer(
                payload, dtype=_packed_dtype(width), count=n, offset=_HEADER_BYTES
            )
        else:
            offsets = np.zeros(n, dtype=np.uint8)
        return FORSpan(reference, width, n, offsets)

    def decode(
        self, payload: bytes, desc: BlockDescriptor, dtype: np.dtype
    ) -> np.ndarray:
        span = self._parse(payload)
        return (span.offsets.astype(np.int64) + span.reference).astype(dtype)

    def gather(
        self,
        payload: bytes,
        desc: BlockDescriptor,
        dtype: np.dtype,
        positions: np.ndarray,
    ) -> np.ndarray:
        span = self._parse(payload)
        local = span.offsets[positions - desc.start_pos]
        return (local.astype(np.int64) + span.reference).astype(dtype)

    def scan_positions(self, payload, desc, dtype, predicate):
        from ..positions import from_mask

        span = self._parse(payload)
        # Predicate in offset space: compare against (value - reference).
        values = span.offsets.astype(np.int64) + span.reference
        return from_mask(desc.start_pos, predicate.mask(values.astype(dtype)))

    def parse_span(self, payload: bytes) -> FORSpan:
        """One block's reference + packed offsets, unexpanded.

        The compressed-execution kernels rebase predicate constants by the
        reference and compare the narrow offsets directly, so the packed
        data never widens to int64 values.
        """
        return self._parse(payload)

    def block_width_bits(self, payload: bytes) -> int:
        """Packed offset width of one block (introspection/tests)."""
        return self._parse(payload).width


FOR = register_encoding(FrameOfReferenceEncoding())
