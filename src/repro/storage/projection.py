"""C-Store projections: groups of columns stored in a common sort order.

A projection is a subset of a table's columns, all sorted by the same
(possibly compound) sort key, each column in its own file. One logical column
may be stored redundantly under several encodings — the paper stores LINENUM
as uncompressed, RLE, and bit-vector simultaneously — so a query can pick the
physical representation to scan.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar

import numpy as np

from ..dtypes import ColumnSchema, type_by_name
from ..errors import CatalogError
from .column_file import ColumnFile, write_column
from .encoding import encoding_by_name
from .index import ClusteredIndex
from .partition import (
    PARTITION_DIR_FORMAT,
    PartitionInfo,
    ZoneMap,
    partition_boundaries,
)

META_FILE = "projection.json"


@dataclass
class ProjectionColumn:
    """One logical column of a projection and its physical encodings."""

    schema: ColumnSchema
    files: dict[str, Path]
    index_path: Path | None = None
    _open_files: dict[str, ColumnFile] = field(default_factory=dict)
    _index: ClusteredIndex | None = field(default=None, repr=False)
    #: Guards the lazy ``_open_files`` / ``_index`` population: concurrent
    #: queries share one ProjectionColumn, and an unsynchronized
    #: check-then-act here would open duplicate handles (wasting the
    #: buffer pool's per-file accounting) or double-load the index.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def index(self) -> ClusteredIndex | None:
        """The column's clustered index, if one was built (sort-key columns)."""
        if self.index_path is None:
            return None
        with self._lock:
            if self._index is None:
                self._index = ClusteredIndex.load(self.index_path)
            return self._index

    @property
    def encodings(self) -> list[str]:
        return sorted(self.files)

    #: Default-encoding preference, cheapest to scan first. ``file(None)``
    #: walks this tuple in order; anything not listed loses alphabetically.
    DEFAULT_ENCODING_ORDER: ClassVar[tuple[str, ...]] = (
        "rle",
        "dictionary",
        "for",
        "uncompressed",
        "bitvector",
    )

    def file(self, encoding: str | None = None) -> ColumnFile:
        """Open (and cache) the column file for *encoding*.

        With ``encoding=None`` the cheapest stored representation is chosen
        by walking :data:`DEFAULT_ENCODING_ORDER`: RLE when available, then
        dictionary, then frame-of-reference, then uncompressed, and
        bit-vector only as a last resort (its per-value materialization is
        the costliest decode path).
        """
        if not self.files:
            raise CatalogError(
                f"column {self.schema.name!r} has no physical files here "
                "(partitioned projections store data in their partitions)"
            )
        if encoding is None:
            for preferred in self.DEFAULT_ENCODING_ORDER:
                if preferred in self.files:
                    encoding = preferred
                    break
            else:
                encoding = next(iter(sorted(self.files)))
        if encoding not in self.files:
            raise CatalogError(
                f"column {self.schema.name!r} has no {encoding!r} encoding "
                f"(available: {self.encodings})"
            )
        with self._lock:
            if encoding not in self._open_files:
                self._open_files[encoding] = ColumnFile.open(
                    self.files[encoding]
                )
            return self._open_files[encoding]


@dataclass
class Projection:
    """A sorted column group persisted under one directory.

    A projection may be **range-partitioned**: its sorted rows split into
    contiguous chunks, each a child projection under ``partNNNN/``, with
    per-partition zone maps held in :attr:`partitions`. A partitioned parent
    keeps only schemas — its :class:`ProjectionColumn` entries have no files
    — and execution fans out over the children (see
    :mod:`repro.planner.partitioned`).
    """

    name: str
    directory: Path
    n_rows: int
    sort_keys: list[str]
    columns: dict[str, ProjectionColumn]
    anchor: str | None = None
    partitions: list[PartitionInfo] = field(default_factory=list)

    @classmethod
    def create(
        cls,
        directory: str | Path,
        name: str,
        data: dict[str, np.ndarray],
        schemas: dict[str, ColumnSchema],
        sort_keys: list[str],
        encodings: dict[str, list[str]],
        presorted: bool = False,
        anchor: str | None = None,
        partitions: int = 1,
    ) -> "Projection":
        """Sort *data* by *sort_keys* and write one file per column encoding.

        Args:
            directory: target directory (created if missing).
            name: projection name.
            data: column name -> value array; all arrays the same length.
            schemas: column name -> schema (must cover every data column).
            sort_keys: ordered sort-key column names (may be empty).
            encodings: column name -> list of encoding names to store.
            presorted: skip sorting when the caller already ordered the rows.
            anchor: logical table this projection belongs to. C-Store stores
                one table as several differently-sorted projections; queries
                naming the anchor are routed to the best-fitting projection.
            partitions: number of horizontal range partitions. Values above
                one split the sorted rows into that many contiguous chunks
                (clamped to the row count), each stored as a child
                projection with its own zone maps.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        lengths = {len(v) for v in data.values()}
        if len(lengths) > 1:
            raise CatalogError(f"columns of {name!r} differ in length: {lengths}")
        for col in data:
            if schemas[col].ctype.name == "float64":
                raise CatalogError(
                    f"column {col!r}: float64 columns are not supported yet "
                    "(the tuple pipeline is integer-typed; dictionary- or "
                    "fixed-point-encode real-valued data)"
                )
        n_rows = lengths.pop() if lengths else 0

        if sort_keys and not presorted and n_rows:
            order = np.lexsort([data[k] for k in reversed(sort_keys)])
            data = {col: np.ascontiguousarray(v[order]) for col, v in data.items()}

        if partitions > 1 and n_rows > 1:
            return cls._create_partitioned(
                directory,
                name,
                data,
                schemas,
                sort_keys,
                encodings,
                anchor,
                partitions,
                n_rows,
            )

        columns: dict[str, ProjectionColumn] = {}
        # A clustered index is possible exactly for the primary sort key —
        # the only globally sorted column (paper Section 2.1.1).
        indexed = sort_keys[0] if sort_keys and n_rows else None
        for col, values in data.items():
            schema = schemas[col]
            files: dict[str, Path] = {}
            for enc_name in encodings.get(col, ["uncompressed"]):
                encoding = encoding_by_name(enc_name)
                path = directory / f"{col}.{enc_name}.col"
                write_column(path, values, schema.ctype, encoding, column_name=col)
                files[enc_name] = path
            index_path = None
            if col == indexed:
                index_path = directory / f"{col}.idx"
                ClusteredIndex.build(values).save(index_path)
            columns[col] = ProjectionColumn(
                schema=schema, files=files, index_path=index_path
            )

        proj = cls(
            name=name,
            directory=directory,
            n_rows=n_rows,
            sort_keys=list(sort_keys),
            columns=columns,
            anchor=anchor,
        )
        proj._write_meta()
        return proj

    @classmethod
    def _create_partitioned(
        cls,
        directory: Path,
        name: str,
        data: dict[str, np.ndarray],
        schemas: dict[str, ColumnSchema],
        sort_keys: list[str],
        encodings: dict[str, list[str]],
        anchor: str | None,
        n_partitions: int,
        n_rows: int,
    ) -> "Projection":
        """Write the already-sorted rows as contiguous child projections.

        Each chunk becomes a full projection (files, block descriptors,
        clustered index) in its own ``partNNNN/`` subdirectory; the parent
        keeps schema-only columns plus per-partition zone maps in its
        metadata.
        """
        infos: list[PartitionInfo] = []
        for i, (start, stop) in enumerate(
            partition_boundaries(n_rows, n_partitions)
        ):
            part_name = PARTITION_DIR_FORMAT.format(index=i)
            chunk = {
                col: np.ascontiguousarray(values[start:stop])
                for col, values in data.items()
            }
            child = cls.create(
                directory / part_name,
                f"{name}/{part_name}",
                chunk,
                schemas,
                sort_keys,
                encodings,
                presorted=True,  # chunks of a sorted array stay sorted
                anchor=None,
            )
            zone_maps = {
                col: ZoneMap(int(values.min()), int(values.max()))
                for col, values in chunk.items()
            }
            infos.append(
                PartitionInfo(
                    name=part_name,
                    directory=directory / part_name,
                    n_rows=stop - start,
                    zone_maps=zone_maps,
                    _projection=child,
                )
            )
        proj = cls(
            name=name,
            directory=directory,
            n_rows=n_rows,
            sort_keys=list(sort_keys),
            columns={
                col: ProjectionColumn(schema=schemas[col], files={})
                for col in data
            },
            anchor=anchor,
            partitions=infos,
        )
        proj._write_meta()
        return proj

    def _write_meta(self) -> None:
        meta = {
            "name": self.name,
            "n_rows": self.n_rows,
            "sort_keys": self.sort_keys,
            "anchor": self.anchor,
            "partitions": [p.as_dict() for p in self.partitions],
            "columns": {
                col: {
                    "dtype": pc.schema.ctype.name,
                    "dictionary": list(pc.schema.dictionary),
                    "files": {
                        enc: path.name for enc, path in pc.files.items()
                    },
                    "index": pc.index_path.name if pc.index_path else None,
                }
                for col, pc in self.columns.items()
            },
        }
        # Write-then-replace so a crash mid-dump can never leave a
        # half-written metadata file where a valid one used to be.
        from .atomic import write_file_atomic

        write_file_atomic(
            self.directory / META_FILE, json.dumps(meta, indent=2)
        )

    @classmethod
    def open(cls, directory: str | Path) -> "Projection":
        """Load a projection from its directory metadata."""
        directory = Path(directory)
        meta_path = directory / META_FILE
        if not meta_path.exists():
            raise CatalogError(f"no projection metadata at {meta_path}")
        with open(meta_path, encoding="utf-8") as f:
            meta = json.load(f)
        columns = {}
        for col, info in meta["columns"].items():
            schema = ColumnSchema(
                name=col,
                ctype=type_by_name(info["dtype"]),
                dictionary=tuple(info["dictionary"]),
            )
            files = {
                enc: directory / fname for enc, fname in info["files"].items()
            }
            index_name = info.get("index")
            columns[col] = ProjectionColumn(
                schema=schema,
                files=files,
                index_path=directory / index_name if index_name else None,
            )
        return cls(
            name=meta["name"],
            directory=directory,
            n_rows=meta["n_rows"],
            sort_keys=list(meta["sort_keys"]),
            columns=columns,
            anchor=meta.get("anchor"),
            partitions=[
                PartitionInfo.from_dict(p, directory)
                for p in meta.get("partitions", [])
            ],
        )

    # --------------------------------------------------------- partitioning

    @property
    def is_partitioned(self) -> bool:
        return bool(self.partitions)

    def partition(self, name: str) -> PartitionInfo:
        for part in self.partitions:
            if part.name == name:
                return part
        raise CatalogError(
            f"projection {self.name!r} has no partition {name!r}"
        )

    def physical_column(self, name: str) -> ProjectionColumn:
        """The column's physical incarnation: own files, or the first
        partition's (every partition shares schemas and encodings, so any
        one answers metadata questions — encodings, block shape, run
        lengths — for the whole projection)."""
        if self.partitions:
            return self.partitions[0].open().column(name)
        return self.column(name)

    def read_column_values(self, name: str, encoding: str | None = None):
        """All stored values of one column, concatenated across partitions."""
        if not self.partitions:
            return self.column(name).file(encoding).read_all_values()
        return np.concatenate(
            [
                part.open().column(name).file(encoding).read_all_values()
                for part in self.partitions
            ]
        )

    def column(self, name: str) -> ProjectionColumn:
        try:
            return self.columns[name]
        except KeyError:
            raise CatalogError(
                f"projection {self.name!r} has no column {name!r}"
            ) from None

    def schema(self, name: str) -> ColumnSchema:
        return self.column(name).schema

    @property
    def column_names(self) -> list[str]:
        return list(self.columns)

    def storage_report(self) -> dict:
        """Physical-design summary: per column/encoding sizes and structure.

        Returns ``{column: {encoding: {bytes, blocks, avg_run_length,
        compression_ratio}}}`` where the ratio is stored bytes over the raw
        fixed-width footprint (lower is better). For a partitioned
        projection the figures are summed over every partition (run lengths
        averaged, weighted by blocks).
        """
        if self.partitions:
            return self._partitioned_storage_report()
        report: dict = {}
        for col, pc in self.columns.items():
            raw_bytes = max(self.n_rows * pc.schema.ctype.itemsize, 1)
            per_encoding = {}
            for enc in pc.encodings:
                cf = pc.file(enc)
                per_encoding[enc] = {
                    "bytes": cf.size_bytes(),
                    "blocks": cf.n_blocks,
                    "avg_run_length": round(cf.avg_run_length, 2),
                    "compression_ratio": round(cf.size_bytes() / raw_bytes, 3),
                }
            report[col] = per_encoding
        return report

    def _partitioned_storage_report(self) -> dict:
        report: dict = {}
        for part in self.partitions:
            for col, per_encoding in part.open().storage_report().items():
                merged = report.setdefault(col, {})
                raw_bytes = max(self.n_rows * self.schema(col).ctype.itemsize, 1)
                for enc, entry in per_encoding.items():
                    acc = merged.setdefault(
                        enc,
                        {"bytes": 0, "blocks": 0, "_rl_weighted": 0.0},
                    )
                    acc["bytes"] += entry["bytes"]
                    acc["blocks"] += entry["blocks"]
                    acc["_rl_weighted"] += (
                        entry["avg_run_length"] * entry["blocks"]
                    )
                    acc["compression_ratio"] = round(
                        acc["bytes"] / raw_bytes, 3
                    )
        for per_encoding in report.values():
            for acc in per_encoding.values():
                blocks = max(acc["blocks"], 1)
                acc["avg_run_length"] = round(
                    acc.pop("_rl_weighted") / blocks, 2
                )
        return report
