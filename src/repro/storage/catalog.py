"""Database catalog: a directory of projections behind an atomic manifest.

The catalog's on-disk source of truth is ``manifest.json`` at the database
root: a generation-numbered map from projection name to the directory
holding its current build, plus per-table ``wal_applied`` markers the tuple
mover uses to make WAL truncation restartable. Every mutation — create,
replace, drop, and the tuple mover's multi-projection merge — stages new
files under ``tmp-<generation>-*/``, fsyncs them, renames them into place,
and commits with a single ``os.replace`` of the manifest (see
:mod:`repro.storage.atomic`). A crash at any boundary leaves either the old
manifest (staged debris is garbage-collected on the next open) or the new
one (superseded directories become the debris) — never a half-visible
catalog.

Roots created before the manifest existed are adopted on first open: the
legacy directory glob discovers their projections and a generation-0
manifest is committed over them.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import numpy as np

from ..dtypes import ColumnSchema
from ..errors import CatalogError
from .atomic import fsync_dir, fsync_tree, rename_dir, write_file_atomic
from .projection import META_FILE, Projection

#: The commit point: whichever build set this file names is the catalog.
MANIFEST_FILE = "manifest.json"

#: Staging-directory prefix; anything matching ``tmp-*`` at the root is an
#: uncommitted build and is deleted on open.
STAGING_PREFIX = "tmp-"


class Catalog:
    """Tracks every projection stored under one database root directory."""

    def __init__(self, root: str | Path, crash=None, disk=None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._crash = crash
        self._disk = disk
        self._projections: dict[str, Projection] = {}
        #: Projection name -> directory name under the root (versioned as
        #: ``<name>.g<generation>`` once a build has been replaced).
        self._dirnames: dict[str, str] = {}
        self.generation = 0
        #: Table -> count of WAL records already folded into the read
        #: store by a committed merge whose WAL truncation has not been
        #: confirmed yet (see :meth:`set_wal_applied`).
        self.wal_applied: dict[str, int] = {}
        self._gc_staging()
        if self.manifest_path.exists():
            self._load_manifest()
            self._gc_unreferenced()
        else:
            self._discover()
            # Adopt legacy (or brand-new) roots under a generation-0
            # manifest so every later mutation has a commit point.
            self._write_manifest()

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_FILE

    # ------------------------------------------------------------- recovery

    def _gc_staging(self) -> None:
        """Delete uncommitted debris left by a crash mid-mutation."""
        for path in sorted(self.root.glob(f"{STAGING_PREFIX}*")):
            if path.is_dir():
                shutil.rmtree(path, ignore_errors=True)
            else:
                path.unlink(missing_ok=True)
        # A crash between staging and replacing the manifest leaves its
        # staged copy behind; the committed manifest is still the truth.
        (self.root / f"{MANIFEST_FILE}.tmp").unlink(missing_ok=True)

    def _load_manifest(self) -> None:
        try:
            data = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CatalogError(
                f"{self.manifest_path}: corrupt catalog manifest: {exc}"
            ) from exc
        if not isinstance(data, dict) or "projections" not in data:
            raise CatalogError(
                f"{self.manifest_path}: corrupt catalog manifest: "
                "missing projections map"
            )
        self.generation = int(data.get("generation", 0))
        self.wal_applied = {
            table: int(count)
            for table, count in data.get("wal_applied", {}).items()
        }
        for name, dirname in sorted(data["projections"].items()):
            directory = self.root / dirname
            if not (directory / META_FILE).exists():
                raise CatalogError(
                    f"{self.manifest_path}: manifest names projection "
                    f"{name!r} at {dirname!r} but {directory / META_FILE} "
                    "is missing"
                )
            self._projections[name] = Projection.open(directory)
            self._dirnames[name] = dirname

    def _gc_unreferenced(self) -> None:
        """Delete projection directories the manifest no longer names.

        A crash after the manifest commit but before post-commit cleanup
        leaves the superseded build (or a dropped projection's files) on
        disk; the manifest decides, so they go.
        """
        referenced = set(self._dirnames.values())
        for meta in sorted(self.root.glob(f"*/{META_FILE}")):
            if meta.parent.name not in referenced:
                shutil.rmtree(meta.parent, ignore_errors=True)

    def _discover(self) -> None:
        # Single-level glob on purpose: partition children live one level
        # deeper (<projection>/partNNNN/) and are reachable only through
        # their parent's metadata, never as catalog entries of their own.
        for meta in sorted(self.root.glob(f"*/{META_FILE}")):
            proj = Projection.open(meta.parent)
            self._projections[proj.name] = proj
            self._dirnames[proj.name] = meta.parent.name

    # --------------------------------------------------------------- commit

    def _write_manifest(self) -> None:
        payload = json.dumps(
            {
                "generation": self.generation,
                "projections": dict(sorted(self._dirnames.items())),
                "wal_applied": {
                    t: n for t, n in sorted(self.wal_applied.items()) if n
                },
            },
            indent=2,
            sort_keys=True,
        )
        write_file_atomic(
            self.manifest_path, payload, crash=self._crash, disk=self._disk
        )

    def _final_dirname(self, name: str, generation: int) -> str:
        """Where a build of *name* committed at *generation* should live."""
        if name not in self._dirnames and not (self.root / name).exists():
            return name
        return f"{name}.g{generation}"

    def _commit_builds(
        self, builds: list[dict], wal_marker: tuple[str, int] | None = None
    ) -> list[Projection]:
        """Stage, fsync, rename, and manifest-commit a set of builds.

        Each entry of *builds* holds ``Projection.create`` keyword
        arguments plus ``name``. All builds land in ONE manifest commit,
        which is what makes the tuple mover's multi-projection merge
        atomic; *wal_marker* ``(table, records)`` rides in the same commit
        so recovery can tell a merged-but-untruncated WAL from a live one.
        """
        generation = self.generation + 1
        staged: list[tuple[str, str, str | None]] = []
        for build in builds:
            name = build["name"]
            staging = self.root / f"{STAGING_PREFIX}{generation}-{name}"
            Projection.create(
                staging,
                name,
                build["data"],
                build["schemas"],
                build["sort_keys"],
                build["encodings"],
                presorted=build.get("presorted", False),
                anchor=build.get("anchor"),
                partitions=build.get("partitions", 1),
            )
            fsync_tree(staging, crash=self._crash, disk=self._disk)
            dirname = self._final_dirname(name, generation)
            rename_dir(staging, self.root / dirname, crash=self._crash)
            staged.append((name, dirname, self._dirnames.get(name)))
        fsync_dir(self.root, crash=self._crash, disk=self._disk)

        self.generation = generation
        for name, dirname, _old in staged:
            self._dirnames[name] = dirname
        if wal_marker is not None:
            table, records = wal_marker
            self.wal_applied[table] = records
        self._write_manifest()  # <- the commit point

        out: list[Projection] = []
        for name, dirname, old in staged:
            self._projections[name] = Projection.open(self.root / dirname)
            out.append(self._projections[name])
            if old is not None and old != dirname:
                if self._crash is not None:
                    self._crash.hook("rmtree", self.root / old)
                shutil.rmtree(self.root / old, ignore_errors=True)
        return out

    def set_wal_applied(self, table: str, records: int) -> None:
        """Commit the per-table merged-WAL marker (0 clears it).

        The tuple mover sets the marker in the same commit that publishes
        the merged projections, truncates the WAL, then clears it here;
        recovery clears it after discarding the already-applied prefix of
        a WAL the crash preserved. Either way the clear is itself a
        manifest commit, so the marker can never disagree with the files.
        """
        if records == 0 and not self.wal_applied.get(table):
            self.wal_applied.pop(table, None)
            return
        if records:
            self.wal_applied[table] = records
        else:
            self.wal_applied.pop(table, None)
        self.generation += 1
        self._write_manifest()

    # ------------------------------------------------------------ mutations

    def create_projection(
        self,
        name: str,
        data: dict[str, np.ndarray],
        schemas: dict[str, ColumnSchema],
        sort_keys: list[str],
        encodings: dict[str, list[str]],
        presorted: bool = False,
        anchor: str | None = None,
        partitions: int = 1,
    ) -> Projection:
        """Create and register a new projection (fails if the name exists).

        ``partitions`` above one range-partitions the projection on its sort
        order: contiguous row chunks become child projections with zone maps
        (see :mod:`repro.storage.partition`). The build is staged and
        manifest-committed, so a crash mid-create leaves no trace.
        """
        if name in self._projections:
            raise CatalogError(f"projection {name!r} already exists")
        return self._commit_builds(
            [
                dict(
                    name=name,
                    data=data,
                    schemas=schemas,
                    sort_keys=sort_keys,
                    encodings=encodings,
                    presorted=presorted,
                    anchor=anchor,
                    partitions=partitions,
                )
            ]
        )[0]

    def replace_projection(
        self,
        name: str,
        data,
        schemas,
        sort_keys,
        encodings,
        anchor=None,
        partitions: int = 1,
    ) -> Projection:
        """Atomically swap a projection's contents (the tuple mover's write).

        The new build is staged next to the old one and published by the
        manifest commit; readers holding the old :class:`Projection` keep a
        consistent (stale) view until they re-resolve, and the old
        directory is deleted only after the commit.
        """
        return self._commit_builds(
            [
                dict(
                    name=name,
                    data=data,
                    schemas=schemas,
                    sort_keys=sort_keys,
                    encodings=encodings,
                    anchor=anchor,
                    partitions=partitions,
                )
            ]
        )[0]

    def commit_merge(
        self, table: str, builds: list[dict], wal_records: int
    ) -> list[Projection]:
        """Publish every projection of *table* rebuilt by the tuple mover.

        One manifest commit covers all the builds plus the
        ``wal_applied[table] = wal_records`` marker; the caller truncates
        the WAL strictly afterwards and then clears the marker via
        :meth:`set_wal_applied`.
        """
        return self._commit_builds(builds, wal_marker=(table, wal_records))

    def drop_projection(self, name: str) -> None:
        """Delete a projection: manifest-commit the removal, then its files.

        Ordering matters — a crash before the commit resurrects the
        projection (the drop was never acknowledged); a crash after it
        leaves an unreferenced directory the next open garbage-collects.
        """
        proj = self.get(name)
        del self._projections[name]
        del self._dirnames[name]
        self.generation += 1
        self._write_manifest()
        if self._crash is not None:
            self._crash.hook("rmtree", proj.directory)
        shutil.rmtree(proj.directory, ignore_errors=True)

    # -------------------------------------------------------------- lookups

    def candidates(self, name: str) -> list[Projection]:
        """Projections usable for *name*: its own, or those anchored to it."""
        out = []
        if name in self._projections:
            out.append(self._projections[name])
        for proj in self._projections.values():
            if proj.anchor == name and proj.name != name:
                out.append(proj)
        return out

    def has(self, name: str) -> bool:
        """True when *name* is a projection or an anchor table name."""
        return bool(self.candidates(name))

    def get(self, name: str) -> Projection:
        try:
            return self._projections[name]
        except KeyError:
            raise CatalogError(f"unknown projection {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._projections

    def names(self) -> list[str]:
        return sorted(self._projections)
