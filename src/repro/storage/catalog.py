"""Database catalog: a directory of projections."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..dtypes import ColumnSchema
from ..errors import CatalogError
from .projection import META_FILE, Projection


class Catalog:
    """Tracks every projection stored under one database root directory."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._projections: dict[str, Projection] = {}
        self._discover()

    def _discover(self) -> None:
        # Single-level glob on purpose: partition children live one level
        # deeper (<projection>/partNNNN/) and are reachable only through
        # their parent's metadata, never as catalog entries of their own.
        for meta in sorted(self.root.glob(f"*/{META_FILE}")):
            proj = Projection.open(meta.parent)
            self._projections[proj.name] = proj

    def create_projection(
        self,
        name: str,
        data: dict[str, np.ndarray],
        schemas: dict[str, ColumnSchema],
        sort_keys: list[str],
        encodings: dict[str, list[str]],
        presorted: bool = False,
        anchor: str | None = None,
        partitions: int = 1,
    ) -> Projection:
        """Create and register a new projection (fails if the name exists).

        ``partitions`` above one range-partitions the projection on its sort
        order: contiguous row chunks become child projections with zone maps
        (see :mod:`repro.storage.partition`).
        """
        if name in self._projections:
            raise CatalogError(f"projection {name!r} already exists")
        proj = Projection.create(
            self.root / name,
            name,
            data,
            schemas,
            sort_keys,
            encodings,
            presorted=presorted,
            anchor=anchor,
            partitions=partitions,
        )
        self._projections[name] = proj
        return proj

    def replace_projection(
        self,
        name: str,
        data,
        schemas,
        sort_keys,
        encodings,
        anchor=None,
        partitions: int = 1,
    ) -> Projection:
        """Atomically swap a projection's contents (the tuple mover's write).

        The old directory is removed and the projection recreated with the
        given data under the same name (and partition count).
        """
        import shutil

        if name in self._projections:
            shutil.rmtree(self._projections[name].directory, ignore_errors=True)
            del self._projections[name]
        return self.create_projection(
            name,
            data,
            schemas,
            sort_keys,
            encodings,
            anchor=anchor,
            partitions=partitions,
        )

    def drop_projection(self, name: str) -> None:
        """Delete a projection's directory and forget it."""
        import shutil

        proj = self.get(name)
        shutil.rmtree(proj.directory, ignore_errors=True)
        del self._projections[name]

    def candidates(self, name: str) -> list[Projection]:
        """Projections usable for *name*: its own, or those anchored to it."""
        out = []
        if name in self._projections:
            out.append(self._projections[name])
        for proj in self._projections.values():
            if proj.anchor == name and proj.name != name:
                out.append(proj)
        return out

    def has(self, name: str) -> bool:
        """True when *name* is a projection or an anchor table name."""
        return bool(self.candidates(name))

    def get(self, name: str) -> Projection:
        try:
            return self._projections[name]
        except KeyError:
            raise CatalogError(f"unknown projection {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._projections

    def names(self) -> list[str]:
        return sorted(self._projections)
