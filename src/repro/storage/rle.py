"""Run-length column encoding.

Each block holds a series of RLE triples ``(value, start, length)`` exactly as
in C-Store: ``value`` repeats for ``length`` consecutive positions beginning
at absolute position ``start``. Sorted or semi-sorted columns compress to a
handful of blocks, and run-aware operators can process an entire run per
iterator step — the paper's "operate directly on compressed data" advantage.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import EncodingError
from ..positions import PositionSet, RangePositions, from_mask
from ..predicates import Predicate
from .block import BLOCK_SIZE, BlockDescriptor
from .encoding import EncodedBlock, Encoding, register_encoding

# A triple is stored as three int64s: value, absolute start position, length.
_TRIPLE_BYTES = 24
RUNS_PER_BLOCK = BLOCK_SIZE // _TRIPLE_BYTES


def compute_runs(values: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run-length encode an array: returns (run_values, run_offsets, run_lengths).

    Offsets are relative to the start of *values*.
    """
    if len(values) == 0:
        empty = np.empty(0, dtype=np.int64)
        return values[:0], empty, empty
    change = np.nonzero(values[1:] != values[:-1])[0]
    offsets = np.concatenate(([0], change + 1)).astype(np.int64)
    lengths = np.diff(np.concatenate((offsets, [len(values)])))
    return values[offsets], offsets, lengths


class RLEEncoding(Encoding):
    """C-Store run-length encoding with (value, start, length) triples."""

    name = "rle"
    supports_position_filtering = True
    supports_runs = True

    def encode(
        self, values: np.ndarray, dtype: np.dtype, start_pos: int = 0
    ) -> Iterator[EncodedBlock]:
        values = np.ascontiguousarray(values, dtype=dtype)
        run_values, run_offsets, run_lengths = compute_runs(values)
        run_starts = run_offsets + start_pos
        for off in range(0, len(run_values), RUNS_PER_BLOCK):
            v = run_values[off : off + RUNS_PER_BLOCK].astype(np.int64)
            s = run_starts[off : off + RUNS_PER_BLOCK]
            length = run_lengths[off : off + RUNS_PER_BLOCK]
            payload = np.concatenate((v, s, length)).tobytes()
            yield EncodedBlock(
                payload=payload,
                start_pos=int(s[0]),
                n_values=int(length.sum()),
                min_value=float(v.min()),
                max_value=float(v.max()),
            )

    def _triples(
        self, payload: bytes
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        raw = np.frombuffer(payload, dtype=np.int64)
        if raw.size % 3:
            raise EncodingError("RLE payload is not a whole number of triples")
        n = raw.size // 3
        return raw[:n], raw[n : 2 * n], raw[2 * n :]

    def runs(
        self, payload: bytes, desc: BlockDescriptor, dtype: np.dtype
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        values, starts, lengths = self._triples(payload)
        return values.astype(dtype), starts, lengths

    def decode(
        self, payload: bytes, desc: BlockDescriptor, dtype: np.dtype
    ) -> np.ndarray:
        values, _starts, lengths = self._triples(payload)
        return np.repeat(values.astype(dtype), lengths)

    def scan_positions(
        self,
        payload: bytes,
        desc: BlockDescriptor,
        dtype: np.dtype,
        predicate: Predicate,
    ) -> PositionSet:
        values, starts, lengths = self._triples(payload)
        keep = predicate.mask(values.astype(dtype))
        if not keep.any():
            return RangePositions.empty()
        starts_k = starts[keep]
        lengths_k = lengths[keep]
        if len(starts_k) == 1:
            s = int(starts_k[0])
            return RangePositions(s, s + int(lengths_k[0]))
        # Build the match mask for the whole block in one vectorised pass:
        # +1 at each surviving run start, -1 one past its end, cumsum > 0.
        span = desc.end_pos - desc.start_pos
        delta = np.zeros(span + 1, dtype=np.int32)
        delta[starts_k - desc.start_pos] = 1
        delta[starts_k - desc.start_pos + lengths_k] -= 1
        mask = np.cumsum(delta[:-1]) > 0
        return from_mask(desc.start_pos, mask)

    def scan_pairs(
        self,
        payload: bytes,
        desc: BlockDescriptor,
        dtype: np.dtype,
        predicate: Predicate | None,
    ) -> tuple[PositionSet, np.ndarray]:
        values, starts, lengths = self._triples(payload)
        typed = values.astype(dtype)
        if predicate is None:
            keep = np.ones(len(values), dtype=bool)
        else:
            keep = predicate.mask(typed)
        positions = self.scan_positions(payload, desc, dtype, predicate) \
            if predicate is not None else RangePositions(desc.start_pos, desc.end_pos)
        out_values = np.repeat(typed[keep], lengths[keep])
        return positions, out_values

    def gather(
        self,
        payload: bytes,
        desc: BlockDescriptor,
        dtype: np.dtype,
        positions: np.ndarray,
    ) -> np.ndarray:
        values, starts, lengths = self._triples(payload)
        # Map each requested position to the run containing it without
        # decompressing: binary search over run starts.
        idx = np.searchsorted(starts, positions, side="right") - 1
        return values[idx].astype(dtype)

    def stats_run_count(self, payload: bytes, desc: BlockDescriptor) -> int:
        return len(payload) // _TRIPLE_BYTES


RLE = register_encoding(RLEEncoding())
