"""On-disk column storage.

Each column of a projection is stored in its own file as a sequence of 64 KB
blocks (`block.py`), encoded with one of three codecs — uncompressed
(`uncompressed.py`), run-length (`rle.py`), bit-vector (`bitvector.py`),
dictionary (`dictionary.py`), or frame-of-reference (`forenc.py`) —
behind a common interface (`encoding.py`). `column_file.py` handles the file
format; `projection.py` and `catalog.py` manage sorted column groups
(C-Store projections) and their metadata.
"""

from .block import BLOCK_SIZE, BlockDescriptor
from .encoding import Encoding, encoding_by_name
from .uncompressed import UncompressedEncoding
from .rle import RLEEncoding
from .bitvector import BitVectorEncoding
from .dictionary import DictionaryEncoding
from .forenc import FrameOfReferenceEncoding
from .column_file import ColumnFile, write_column
from .projection import Projection, ProjectionColumn
from .catalog import Catalog

__all__ = [
    "BLOCK_SIZE",
    "BlockDescriptor",
    "Encoding",
    "encoding_by_name",
    "UncompressedEncoding",
    "RLEEncoding",
    "BitVectorEncoding",
    "DictionaryEncoding",
    "FrameOfReferenceEncoding",
    "ColumnFile",
    "write_column",
    "Projection",
    "ProjectionColumn",
    "Catalog",
]
