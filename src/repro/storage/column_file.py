"""Column file format: header + sequence of encoded 64 KB blocks.

Layout::

    magic "RCOL0001" | uint32 header_len | header JSON | block payloads...

The header carries the column schema, encoding name, and one descriptor per
block (offset, length, position coverage, min/max). Descriptors live in the
header so that block skipping never touches payload bytes.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..dtypes import ColumnType, type_by_name
from ..errors import CorruptBlockError, StorageError
from .block import BlockDescriptor
from .stats import ColumnHistogram
from .encoding import Encoding, encoding_by_name

MAGIC = b"RCOL0001"


def write_column(
    path: str | Path,
    values: np.ndarray,
    ctype: ColumnType,
    encoding: Encoding,
    column_name: str = "",
) -> "ColumnFile":
    """Encode *values* with *encoding* and write a column file at *path*."""
    path = Path(path)
    values = ctype.validate(values)
    blocks = list(encoding.encode(values, ctype.numpy_dtype))
    descriptors = []
    offset = 0  # relative to payload area; rebased after header is sized
    total_runs = 0
    for index, blk in enumerate(blocks):
        descriptors.append(
            BlockDescriptor(
                index=index,
                offset=offset,
                nbytes=len(blk.payload),
                start_pos=blk.start_pos,
                n_values=blk.n_values,
                min_value=blk.min_value,
                max_value=blk.max_value,
                crc32=zlib.crc32(blk.payload),
            )
        )
        offset += len(blk.payload)
    histogram = ColumnHistogram.build(values)
    header = {
        "column": column_name or path.stem,
        "dtype": ctype.name,
        "encoding": encoding.name,
        "n_values": int(len(values)),
        "histogram": histogram.to_json(),
        "blocks": [d.to_json() for d in descriptors],
    }
    header_bytes = json.dumps(header).encode("utf-8")
    base = len(MAGIC) + 4 + len(header_bytes)
    with open(path, "wb") as f:
        f.write(MAGIC)
        f.write(len(header_bytes).to_bytes(4, "little"))
        f.write(header_bytes)
        for blk in blocks:
            f.write(blk.payload)
    # Rebase descriptor offsets to absolute file offsets.
    rebased = [
        BlockDescriptor(
            index=d.index,
            offset=d.offset + base,
            nbytes=d.nbytes,
            start_pos=d.start_pos,
            n_values=d.n_values,
            min_value=d.min_value,
            max_value=d.max_value,
            crc32=d.crc32,
        )
        for d in descriptors
    ]
    for blk, desc in zip(blocks, rebased):
        total_runs += encoding.stats_run_count(blk.payload, desc)
    return ColumnFile(
        path=path,
        column=header["column"],
        ctype=ctype,
        encoding=encoding,
        n_values=len(values),
        descriptors=rebased,
        total_runs=total_runs,
        histogram=histogram,
    )


@dataclass
class ColumnFile:
    """Read-side handle on a column file: metadata plus payload access."""

    path: Path
    column: str
    ctype: ColumnType
    encoding: Encoding
    n_values: int
    descriptors: list[BlockDescriptor]
    total_runs: int
    histogram: ColumnHistogram | None = None

    @classmethod
    def open(cls, path: str | Path) -> "ColumnFile":
        """Open a column file, reading only the header."""
        path = Path(path)
        with open(path, "rb") as f:
            magic = f.read(len(MAGIC))
            if magic != MAGIC:
                raise StorageError(f"{path} is not a column file (bad magic)")
            header_len = int.from_bytes(f.read(4), "little")
            header = json.loads(f.read(header_len).decode("utf-8"))
        base = len(MAGIC) + 4 + header_len
        descriptors = []
        for d in header["blocks"]:
            d = dict(d)
            d["offset"] += base
            descriptors.append(BlockDescriptor.from_json(d))
        ctype = type_by_name(header["dtype"])
        encoding = encoding_by_name(header["encoding"])
        total_runs = 0
        histogram = (
            ColumnHistogram.from_json(header["histogram"])
            if header.get("histogram")
            else None
        )
        cf = cls(
            path=path,
            column=header["column"],
            ctype=ctype,
            encoding=encoding,
            n_values=header["n_values"],
            descriptors=descriptors,
            total_runs=total_runs,
            histogram=histogram,
        )
        cf.total_runs = cf._count_runs()
        return cf

    def _count_runs(self) -> int:
        if not self.encoding.supports_runs:
            return self.n_values
        total = 0
        with open(self.path, "rb") as f:
            for d in self.descriptors:
                f.seek(d.offset)
                total += self.encoding.stats_run_count(f.read(d.nbytes), d)
        return total

    @property
    def n_blocks(self) -> int:
        return len(self.descriptors)

    @property
    def dtype(self) -> np.dtype:
        return self.ctype.numpy_dtype

    @property
    def avg_run_length(self) -> float:
        """The model's RL: average sorted-run length (1.0 when uncompressed)."""
        if self.total_runs == 0:
            return 1.0
        return self.n_values / self.total_runs

    def read_payload(self, index: int) -> bytes:
        """Read one block payload straight from disk (bypassing any pool)."""
        d = self.descriptors[index]
        with open(self.path, "rb") as f:
            f.seek(d.offset)
            payload = f.read(d.nbytes)
        if len(payload) != d.nbytes:
            raise StorageError(
                f"{self.path}: short read on block {index} "
                f"({len(payload)} of {d.nbytes} bytes)"
            )
        if d.crc32 is not None and zlib.crc32(payload) != d.crc32:
            raise CorruptBlockError(
                f"{self.path}: block {index} failed checksum validation"
            )
        return payload

    def read_all_values(self) -> np.ndarray:
        """Decode the whole column to a value array (bulk maintenance path)."""
        parts = [
            self.encoding.decode(self.read_payload(d.index), d, self.dtype)
            for d in self.descriptors
        ]
        if not parts:
            return np.empty(0, dtype=self.dtype)
        return np.concatenate(parts)

    def blocks_for_positions(self, start: int, stop: int) -> list[BlockDescriptor]:
        """Descriptors of blocks covering any position in ``[start, stop)``."""
        return [d for d in self.descriptors if d.covers_positions(start, stop)]

    def size_bytes(self) -> int:
        return os.path.getsize(self.path)
