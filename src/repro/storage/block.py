"""The 64 KB storage block.

C-Store stores each column as a series of 64 KB blocks; all I/O, buffering,
and model accounting happens at block granularity. A block's descriptor keeps
the position range it covers and the min/max value it contains, enabling both
positional block skipping (LM re-access, DS3/DS4) and value-based block
skipping (selective predicates over sorted columns).
"""

from __future__ import annotations

from dataclasses import dataclass

BLOCK_SIZE = 64 * 1024
"""Maximum payload bytes per storage block."""


@dataclass(frozen=True)
class BlockDescriptor:
    """Catalog entry for one block of a column file.

    Attributes:
        index: ordinal of the block within its file.
        offset: byte offset of the payload within the file.
        nbytes: payload length in bytes.
        start_pos: position (row ordinal) of the first value covered.
        n_values: number of column positions covered by the block.
        min_value: smallest value stored in the block.
        max_value: largest value stored in the block.
        crc32: checksum of the payload bytes (None for legacy files).
    """

    index: int
    offset: int
    nbytes: int
    start_pos: int
    n_values: int
    min_value: float
    max_value: float
    crc32: int | None = None

    @property
    def end_pos(self) -> int:
        """One past the last position covered (half-open)."""
        return self.start_pos + self.n_values

    def covers_positions(self, start: int, stop: int) -> bool:
        """True when the block's position range intersects ``[start, stop)``."""
        return self.start_pos < stop and start < self.end_pos

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "offset": self.offset,
            "nbytes": self.nbytes,
            "start_pos": self.start_pos,
            "n_values": self.n_values,
            "min_value": self.min_value,
            "max_value": self.max_value,
            "crc32": self.crc32,
        }

    @classmethod
    def from_json(cls, data: dict) -> "BlockDescriptor":
        return cls(
            index=data["index"],
            offset=data["offset"],
            nbytes=data["nbytes"],
            start_pos=data["start_pos"],
            n_values=data["n_values"],
            min_value=data["min_value"],
            max_value=data["max_value"],
            crc32=data.get("crc32"),
        )
