"""Horizontal range partitions of a projection.

A partitioned projection splits its (globally sorted) rows into N contiguous
chunks, each stored as a full child projection under ``partNNNN/`` inside the
parent's directory. Because the split respects the sort order, every
partition covers a contiguous sort-key range, and the per-partition,
per-column min/max **zone maps** recorded here let the planner discard whole
partitions before any DS operator runs — the partition-level analogue of the
per-block min/max skipping in :mod:`repro.storage.stats`.

Zone maps are persisted inside the parent's ``projection.json``; the child
projections carry their own column files, block descriptors, and clustered
indexes, so per-partition execution reuses the ordinary operator stack
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from ..errors import CatalogError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .projection import Projection

#: Child-directory naming scheme; the zero padding keeps partition order
#: and lexicographic order identical.
PARTITION_DIR_FORMAT = "part{index:04d}"


@dataclass(frozen=True)
class ZoneMap:
    """Closed [min, max] interval of one column's values inside a partition."""

    min_value: int
    max_value: int

    def as_dict(self) -> dict:
        return {"min": self.min_value, "max": self.max_value}

    @classmethod
    def from_dict(cls, data: dict) -> "ZoneMap":
        return cls(min_value=int(data["min"]), max_value=int(data["max"]))


@dataclass
class PartitionInfo:
    """One horizontal range partition: its location, size, and zone maps."""

    name: str
    directory: Path
    n_rows: int
    zone_maps: dict[str, ZoneMap]
    _projection: "Projection | None" = field(default=None, repr=False)

    def open(self) -> "Projection":
        """Open (and cache) the child projection backing this partition.

        Failures — a missing or unreadable partition directory — surface as
        :class:`~repro.errors.CatalogError` naming the partition, never as a
        partial result.
        """
        if self._projection is None:
            from .projection import Projection

            try:
                self._projection = Projection.open(self.directory)
            except CatalogError as exc:
                raise CatalogError(
                    f"partition {self.name!r} is unreadable: {exc}"
                ) from exc
            except (OSError, ValueError, KeyError) as exc:
                # Mangled projection.json (bad JSON, missing keys) must also
                # surface as a catalog failure naming the partition.
                raise CatalogError(
                    f"partition {self.name!r} has corrupt metadata: {exc}"
                ) from exc
        return self._projection

    def verify_zone_maps(self) -> list[str]:
        """Deep-verify recorded zone maps against the child's actual values.

        Decodes every zoned column and checks the stored [min, max] really
        bounds the data — a mismatch means the parent metadata and the child
        files have diverged (e.g. a partial overwrite). Returns one message
        per violated column; the scrubber folds these into its report.
        """
        problems: list[str] = []
        child = self.open()
        for col, zm in sorted(self.zone_maps.items()):
            cf = child.column(col).file()
            lo = hi = None
            for d in cf.descriptors:
                values = cf.encoding.decode(cf.read_payload(d.index), d,
                                            cf.dtype)
                if not len(values):
                    continue
                lo = int(values.min()) if lo is None else min(
                    lo, int(values.min()))
                hi = int(values.max()) if hi is None else max(
                    hi, int(values.max()))
            if lo is None:
                continue
            if lo < zm.min_value or hi > zm.max_value:
                problems.append(
                    f"zone map for column {col!r} records "
                    f"[{zm.min_value}, {zm.max_value}] but the partition "
                    f"holds [{lo}, {hi}]"
                )
        return problems

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "n_rows": self.n_rows,
            "zone_maps": {
                col: zm.as_dict() for col, zm in self.zone_maps.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict, parent_directory: Path) -> "PartitionInfo":
        return cls(
            name=data["name"],
            directory=parent_directory / data["name"],
            n_rows=int(data["n_rows"]),
            zone_maps={
                col: ZoneMap.from_dict(zm)
                for col, zm in data["zone_maps"].items()
            },
        )


def partition_boundaries(n_rows: int, n_partitions: int) -> list[tuple[int, int]]:
    """Contiguous, near-equal ``[start, stop)`` row ranges covering *n_rows*."""
    k = max(1, min(n_partitions, n_rows))
    cuts = [round(i * n_rows / k) for i in range(k + 1)]
    return [(cuts[i], cuts[i + 1]) for i in range(k)]
