"""fsync/rename primitives for the catalog's atomic commit protocol.

Every multi-file mutation of the read store (tuple-mover merges, projection
creates/drops, advisor applies) follows the classic staged-commit recipe:

1. build the new files under a ``tmp-<generation>-*/`` staging directory;
2. fsync every staged file, then every staged directory (children first);
3. rename the staging directory to its versioned final name;
4. fsync the parent directory so the rename is durable;
5. commit by ``os.replace`` of the generation-numbered manifest — the
   single atomic switch that makes the new files *the* catalog state;
6. only then delete superseded directories and truncate the WAL.

A crash anywhere before step 5 leaves the old manifest pointing at the old
files; the staged/renamed debris is garbage-collected on the next open. A
crash after step 5 leaves the new state committed with at most some
deletable debris. This module provides steps 2–5 as free functions so the
catalog, the delta store, and the qlog all share one implementation — and
one set of :class:`~repro.faults.CrashInjector` hooks, which is what lets
the crash differential enumerate every boundary deterministically.

Each function takes an optional ``crash`` injector (consulted *before* the
real I/O: "the process died just as it was about to …") and an optional
``disk`` model so fsyncs are charged to the simulated disk clock.
"""

from __future__ import annotations

import os
from pathlib import Path


def _hook(crash, op: str, path) -> None:
    if crash is not None:
        crash.hook(op, str(path))


def _charge(disk) -> None:
    if disk is not None:
        disk.charge_fsync()


def fsync_file(path: str | Path, crash=None, disk=None) -> None:
    """fsync one file's contents to stable storage."""
    _hook(crash, "file.fsync", path)
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    _charge(disk)


def fsync_dir(path: str | Path, crash=None, disk=None) -> None:
    """fsync one directory so its entries (renames, unlinks) are durable."""
    _hook(crash, "dir.fsync", path)
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    _charge(disk)


def fsync_tree(root: str | Path, crash=None, disk=None) -> None:
    """fsync every file, then every directory, under *root* (root last).

    The walk order is sorted so the boundary sequence — and therefore the
    crash differential's step numbering — is identical run over run.
    """
    root = Path(root)
    dirs: list[Path] = []
    for dirpath, dirnames, filenames in os.walk(root, topdown=True):
        dirnames.sort()
        dirs.append(Path(dirpath))
        for fname in sorted(filenames):
            fsync_file(Path(dirpath) / fname, crash=crash, disk=disk)
    # Children before parents, so a directory is synced only after the
    # entries it records are themselves durable.
    for directory in reversed(dirs):
        fsync_dir(directory, crash=crash, disk=disk)


def rename_dir(src: str | Path, dst: str | Path, crash=None) -> None:
    """Rename a staged directory to its final name (same filesystem)."""
    _hook(crash, "rename", dst)
    os.rename(str(src), str(dst))


def replace_file(tmp: str | Path, final: str | Path, crash=None) -> None:
    """Atomically swap *final* to the contents staged at *tmp*."""
    _hook(crash, "replace", final)
    os.replace(str(tmp), str(final))


def write_file_atomic(
    path: str | Path, text: str, crash=None, disk=None
) -> None:
    """Write *text* so *path* only ever holds the old or the new contents.

    The write-fsync-replace-fsync dance: stage at ``<path>.tmp``, fsync the
    staged bytes, ``os.replace`` into place, fsync the parent directory.
    Used for the catalog manifest (where the replace IS the commit point)
    and for projection metadata.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    _hook(crash, "file.write", path)
    with open(tmp, "w", encoding="utf-8") as f:
        f.write(text)
        f.flush()
    fsync_file(tmp, crash=crash, disk=disk)
    replace_file(tmp, path, crash=crash)
    fsync_dir(path.parent, crash=crash, disk=disk)
