"""Dictionary column encoding.

Each block stores the distinct values it contains once, followed by a dense
array of fixed-width codes (the narrowest of 1/2/4 bytes that fits the
block's cardinality). C-Store's dictionary scheme [Abadi/Madden/Ferreira,
SIGMOD'06] works the same way; like there, predicates can often be evaluated
against the (small) dictionary and then mapped over the codes, touching each
stored value once at its narrow width.

Positional gathers are cheap (code lookup at an offset), so dictionary
columns participate in every materialization strategy, including LM-pipelined
position filtering.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import EncodingError
from ..positions import PositionSet, from_mask
from ..predicates import Predicate
from .block import BLOCK_SIZE, BlockDescriptor
from .encoding import EncodedBlock, Encoding, register_encoding

_HEADER_BYTES = 16  # uint64 k, uint64 n_values


def _code_dtype(cardinality: int) -> np.dtype:
    if cardinality <= 1 << 8:
        return np.dtype("<u1")
    if cardinality <= 1 << 16:
        return np.dtype("<u2")
    return np.dtype("<u4")


class DictionaryEncoding(Encoding):
    """Per-block dictionary of distinct values + fixed-width codes."""

    name = "dictionary"
    supports_position_filtering = True
    supports_runs = False

    def _values_per_block(self, cardinality_estimate: int) -> int:
        code_width = _code_dtype(max(cardinality_estimate, 1)).itemsize
        budget = BLOCK_SIZE - _HEADER_BYTES - 8 * cardinality_estimate
        per_block = budget // code_width
        if per_block < 1:
            raise EncodingError(
                "dictionary encoding cannot fit "
                f"{cardinality_estimate} distinct values in one block"
            )
        return per_block

    def encode(
        self, values: np.ndarray, dtype: np.dtype, start_pos: int = 0
    ) -> Iterator[EncodedBlock]:
        values = np.ascontiguousarray(values, dtype=dtype)
        if len(values) == 0:
            return
        cardinality = len(np.unique(values))
        per_block = self._values_per_block(cardinality)
        for off in range(0, len(values), per_block):
            chunk = values[off : off + per_block]
            distinct, codes = np.unique(chunk, return_inverse=True)
            payload = b"".join(
                (
                    np.array([len(distinct), len(chunk)], dtype=np.uint64)
                    .tobytes(),
                    distinct.astype(np.int64).tobytes(),
                    codes.astype(_code_dtype(len(distinct))).tobytes(),
                )
            )
            yield EncodedBlock(
                payload=payload,
                start_pos=start_pos + off,
                n_values=len(chunk),
                min_value=float(distinct.min()),
                max_value=float(distinct.max()),
            )

    def _parse(self, payload: bytes) -> tuple[np.ndarray, np.ndarray]:
        """Return (dictionary values, code array)."""
        header = np.frombuffer(payload, dtype=np.uint64, count=2)
        k, n = int(header[0]), int(header[1])
        distinct = np.frombuffer(
            payload, dtype=np.int64, count=k, offset=_HEADER_BYTES
        )
        codes = np.frombuffer(
            payload,
            dtype=_code_dtype(k),
            count=n,
            offset=_HEADER_BYTES + 8 * k,
        )
        return distinct, codes

    def decode(
        self, payload: bytes, desc: BlockDescriptor, dtype: np.dtype
    ) -> np.ndarray:
        distinct, codes = self._parse(payload)
        return distinct.astype(dtype)[codes]

    def scan_positions(
        self,
        payload: bytes,
        desc: BlockDescriptor,
        dtype: np.dtype,
        predicate: Predicate,
    ) -> PositionSet:
        distinct, codes = self._parse(payload)
        # Evaluate the predicate once per distinct value, then map over codes.
        qualifying = predicate.mask(distinct.astype(dtype))
        return from_mask(desc.start_pos, qualifying[codes])

    def gather(
        self,
        payload: bytes,
        desc: BlockDescriptor,
        dtype: np.dtype,
        positions: np.ndarray,
    ) -> np.ndarray:
        distinct, codes = self._parse(payload)
        return distinct.astype(dtype)[codes[positions - desc.start_pos]]

    def code_table(self, payload: bytes) -> tuple[np.ndarray, np.ndarray]:
        """One block's ``(distinct values, code array)`` pair.

        The compressed-execution kernels evaluate predicates against the
        (small) distinct array once and then index the result by the narrow
        codes — the dictionary data never expands to int64 values.
        """
        return self._parse(payload)

    def dictionary_size(self, payload: bytes) -> int:
        """Distinct values stored in one block (introspection/tests)."""
        return int(np.frombuffer(payload, dtype=np.uint64, count=1)[0])


DICTIONARY = register_encoding(DictionaryEncoding())
