"""Common interface for column encodings (C-Store "DataSource" codecs).

Each encoding knows how to break a value array into 64 KB block payloads and
how to serve the four access patterns the paper's data sources need:

* decode a whole block to values (EM scans, SPC);
* scan a block with a predicate producing positions (DS1) or
  position/value pairs (DS2);
* gather values at given positions (DS3) — not all encodings support this;
* expose run structure for operating directly on compressed data.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..errors import EncodingError, UnsupportedOperationError
from ..positions import PositionSet
from ..predicates import Predicate
from .block import BlockDescriptor


@dataclass(frozen=True)
class EncodedBlock:
    """A block payload paired with the coverage/statistics for its descriptor."""

    payload: bytes
    start_pos: int
    n_values: int
    min_value: float
    max_value: float


class Encoding(ABC):
    """Abstract column codec."""

    name: str = "abstract"

    #: True when the codec can filter by position without decoding whole
    #: blocks (the DS3 operator of LM-pipelined plans). Bit-vector encoding
    #: cannot: there is no way to know a priori which bit-string a given
    #: position's value lives in (paper, Section 4.1). Value *extraction* at
    #: positions still works for every codec — bit-vector simply pays a full
    #: block decompression to serve it.
    supports_position_filtering: bool = True

    #: True when the codec exposes run structure (value repeated over a
    #: contiguous position range) for direct operation on compressed data.
    supports_runs: bool = False

    #: True when ``scan_positions`` is observably equivalent to
    #: ``from_mask(desc.start_pos, predicate.mask(decode(...)))`` — same
    #: member positions *and* same physical representation chosen. The
    #: decoded-block cache may then serve DS1 scans from cached value
    #: arrays. Bit-vector encoding sets this False: its scans answer
    #: directly in bitmap form without decoding, which is both cheaper than
    #: the decoded path and a different representation.
    #:
    #: Precedence: with compressed execution on, DS1 consults the
    #: per-encoding kernel (``repro.compressed.kernels``) *before* this
    #: flag; a kernel hit bypasses the decoded path entirely (and may pick
    #: a different physical representation, e.g. a run list). Only blocks
    #: the kernel declines — no kernel for the encoding, or the
    #: stay-vs-morph model chose to morph — reach the decoded fast path
    #: this flag gates.
    decoded_scan_equivalent: bool = True

    #: Same contract for ``scan_pairs``. The base implementation below *is*
    #: decode-then-mask, so this defaults True; an override with different
    #: observable behaviour must set it False. The compressed kernels do
    #: not cover DS2 (pair output materializes values anyway), so there is
    #: no kernel precedence here.
    decoded_pairs_equivalent: bool = True

    @abstractmethod
    def encode(
        self, values: np.ndarray, dtype: np.dtype, start_pos: int = 0
    ) -> Iterator[EncodedBlock]:
        """Split *values* into encoded 64 KB block payloads."""

    @abstractmethod
    def decode(
        self, payload: bytes, desc: BlockDescriptor, dtype: np.dtype
    ) -> np.ndarray:
        """Decode a full block back to its value array (position order)."""

    @abstractmethod
    def scan_positions(
        self,
        payload: bytes,
        desc: BlockDescriptor,
        dtype: np.dtype,
        predicate: Predicate,
    ) -> PositionSet:
        """DS1: positions within the block whose values satisfy *predicate*."""

    def scan_pairs(
        self,
        payload: bytes,
        desc: BlockDescriptor,
        dtype: np.dtype,
        predicate: Predicate | None,
    ) -> tuple[PositionSet, np.ndarray]:
        """DS2: (positions, values) surviving *predicate* (None = all pass)."""
        values = self.decode(payload, desc, dtype)
        if predicate is None:
            from ..positions import RangePositions

            return RangePositions(desc.start_pos, desc.end_pos), values
        mask = predicate.mask(values)
        from ..positions import from_mask

        return from_mask(desc.start_pos, mask), values[mask]

    def gather(
        self,
        payload: bytes,
        desc: BlockDescriptor,
        dtype: np.dtype,
        positions: np.ndarray,
    ) -> np.ndarray:
        """DS3: values at the given absolute positions (all within the block).

        The default implementation decodes the whole block first — the only
        option for bit-vector data, and the reason every strategy pays the
        decompression toll there.
        """
        values = self.decode(payload, desc, dtype)
        return values[positions - desc.start_pos]

    def runs(
        self, payload: bytes, desc: BlockDescriptor, dtype: np.dtype
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run view ``(values, starts, lengths)`` with absolute start positions."""
        raise UnsupportedOperationError(
            f"{self.name} encoding has no run structure"
        )

    def stats_run_count(self, payload: bytes, desc: BlockDescriptor) -> int:
        """Number of iterator steps a run-aware scan performs on this block.

        Uncompressed data iterates per value; run-length data per run. Feeds
        the analytical model's ``||C|| / RL`` terms.
        """
        return desc.n_values


_REGISTRY: dict[str, Encoding] = {}


def register_encoding(encoding: Encoding) -> Encoding:
    """Register a codec instance under its name (idempotent per name)."""
    _REGISTRY[encoding.name] = encoding
    return encoding


def encoding_by_name(name: str) -> Encoding:
    """Look up a registered codec by catalog name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise EncodingError(f"unknown encoding {name!r}") from None
