"""Uncompressed column encoding: raw fixed-width values, position order."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..positions import PositionSet, from_mask
from ..predicates import Predicate
from .block import BLOCK_SIZE, BlockDescriptor
from .encoding import EncodedBlock, Encoding, register_encoding


class UncompressedEncoding(Encoding):
    """Values stored back-to-back as little-endian fixed-width integers/floats.

    The baseline encoding: every block holds ``BLOCK_SIZE // itemsize``
    values, scans touch every value, and gathers are direct array indexing.
    """

    name = "uncompressed"
    supports_position_filtering = True
    supports_runs = False

    def values_per_block(self, dtype: np.dtype) -> int:
        return BLOCK_SIZE // dtype.itemsize

    def encode(
        self, values: np.ndarray, dtype: np.dtype, start_pos: int = 0
    ) -> Iterator[EncodedBlock]:
        values = np.ascontiguousarray(values, dtype=dtype)
        per_block = self.values_per_block(dtype)
        for off in range(0, len(values), per_block):
            chunk = values[off : off + per_block]
            yield EncodedBlock(
                payload=chunk.tobytes(),
                start_pos=start_pos + off,
                n_values=len(chunk),
                min_value=float(chunk.min()),
                max_value=float(chunk.max()),
            )

    def decode(
        self, payload: bytes, desc: BlockDescriptor, dtype: np.dtype
    ) -> np.ndarray:
        return np.frombuffer(payload, dtype=dtype, count=desc.n_values)

    def scan_positions(
        self,
        payload: bytes,
        desc: BlockDescriptor,
        dtype: np.dtype,
        predicate: Predicate,
    ) -> PositionSet:
        values = self.decode(payload, desc, dtype)
        return from_mask(desc.start_pos, predicate.mask(values))


UNCOMPRESSED = register_encoding(UncompressedEncoding())
