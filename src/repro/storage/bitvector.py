"""Bit-vector column encoding.

A bit-vector encoded column with ``k`` distinct values stores ``k``
bit-strings, one per value, with a 1 in position ``i`` of bit-string ``j``
when the column holds value ``j`` at position ``i``. We block-organise the
paper's whole-column layout: each 64 KB block covers a contiguous position
range and stores the distinct values present in that range together with
their bit-strings for the range.

Properties that matter for the experiments:

* A predicate is evaluated by OR-ing the bit-strings of qualifying values —
  no value decompression needed for DS1 (positions-only) access.
* Position *filtering* (the DS3 operator of LM-pipelined plans) is
  unsupported: there is no way to know which bit-string covers a given
  position without scanning them all, so the LM-pipelined strategy cannot run
  over bit-vector data (paper, Section 4.1). Plain value extraction at
  positions falls back to decoding whole blocks.
* Reconstructing values (needed whenever tuples are built) requires touching
  every bit-string — the decompression cost that dominates Figure 11(c).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import EncodingError
from ..positions import BitmapPositions, PositionSet, RangePositions
from ..positions.bitmap import WORD_BITS, pack_mask, unpack_words
from ..predicates import Predicate
from .block import BLOCK_SIZE, BlockDescriptor
from .encoding import EncodedBlock, Encoding, register_encoding

_HEADER_BYTES = 16  # uint64 k, uint64 n_positions


def _positions_per_block(k: int) -> int:
    """Largest position count whose k bit-strings + values fit in one block."""
    if k < 1:
        raise EncodingError("bit-vector encoding needs at least one value")
    budget = BLOCK_SIZE - _HEADER_BYTES - 8 * k
    words_per_string = budget // (8 * k)
    n = words_per_string * WORD_BITS
    if n < 1:
        raise EncodingError(
            f"bit-vector encoding cannot fit {k} distinct values in one block"
        )
    return n


class BitVectorEncoding(Encoding):
    """Per-value bit-strings over block-sized position ranges."""

    name = "bitvector"
    supports_position_filtering = False
    supports_runs = False
    # DS1 answers straight from the bit-strings (no decode, bitmap output);
    # masking a decoded array would be slower and change the representation.
    decoded_scan_equivalent = False

    def encode(
        self, values: np.ndarray, dtype: np.dtype, start_pos: int = 0
    ) -> Iterator[EncodedBlock]:
        values = np.ascontiguousarray(values, dtype=dtype)
        if len(values) == 0:
            return
        k_global = len(np.unique(values))
        per_block = _positions_per_block(k_global)
        for off in range(0, len(values), per_block):
            chunk = values[off : off + per_block]
            distinct = np.unique(chunk)
            n = len(chunk)
            nwords = (n + WORD_BITS - 1) // WORD_BITS
            parts = [
                np.array([len(distinct), n], dtype=np.uint64).tobytes(),
                distinct.astype(np.int64).tobytes(),
            ]
            for value in distinct:
                words = pack_mask(chunk == value)
                if words.size != nwords:  # pragma: no cover - defensive
                    raise EncodingError("bit-string width mismatch")
                parts.append(words.tobytes())
            yield EncodedBlock(
                payload=b"".join(parts),
                start_pos=start_pos + off,
                n_values=n,
                min_value=float(distinct.min()),
                max_value=float(distinct.max()),
            )

    def _parse(
        self, payload: bytes
    ) -> tuple[np.ndarray, int, np.ndarray]:
        """Return (distinct_values, n_positions, bitstring_words[k, nwords])."""
        header = np.frombuffer(payload, dtype=np.uint64, count=2)
        k, n = int(header[0]), int(header[1])
        values = np.frombuffer(payload, dtype=np.int64, count=k, offset=_HEADER_BYTES)
        nwords = (n + WORD_BITS - 1) // WORD_BITS
        words = np.frombuffer(
            payload,
            dtype=np.uint64,
            count=k * nwords,
            offset=_HEADER_BYTES + 8 * k,
        ).reshape(k, nwords)
        return values, n, words

    def decode(
        self, payload: bytes, desc: BlockDescriptor, dtype: np.dtype
    ) -> np.ndarray:
        values, n, words = self._parse(payload)
        out = np.zeros(n, dtype=dtype)
        # One full pass per distinct value: the decompression cost that makes
        # every strategy pay the same toll on bit-vector data.
        for value, row in zip(values, words):
            out[unpack_words(row, n)] = value
        return out

    def scan_positions(
        self,
        payload: bytes,
        desc: BlockDescriptor,
        dtype: np.dtype,
        predicate: Predicate,
    ) -> PositionSet:
        values, n, words = self._parse(payload)
        keep = predicate.mask(values.astype(dtype))
        if not keep.any():
            return RangePositions.empty()
        merged = np.bitwise_or.reduce(words[keep], axis=0)
        return BitmapPositions(desc.start_pos, n, merged)


BITVECTOR = register_encoding(BitVectorEncoding())
