"""Clustered (sorted-column) index.

The paper (Section 2.1.1) observes that when a clustered index exists over a
column, a range predicate's matching positions can be derived directly from
the index — "the original column values never have to be accessed" — and the
start/end position pair encodes the whole match set.

A :class:`ClusteredIndex` stores, for a globally sorted column, each distinct
value and the first position where it occurs. Lookups binary-search the value
array and return a :class:`~repro.positions.RangePositions`; predicates whose
match set is not one contiguous range (``!=``) report None and the caller
falls back to a scan.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import StorageError
from ..positions import RangePositions

MAGIC = b"RIDX0001"


class ClusteredIndex:
    """Distinct values and their first positions for a sorted column."""

    def __init__(self, values: np.ndarray, first_positions: np.ndarray, n_rows: int):
        self.values = np.asarray(values, dtype=np.int64)
        self.first_positions = np.asarray(first_positions, dtype=np.int64)
        self.n_rows = int(n_rows)

    @classmethod
    def build(cls, column_values: np.ndarray) -> "ClusteredIndex":
        """Build from a column's values; requires global sortedness."""
        arr = np.asarray(column_values)
        if len(arr) > 1 and not np.all(arr[1:] >= arr[:-1]):
            raise StorageError(
                "clustered index requires a globally sorted column"
            )
        if len(arr) == 0:
            empty = np.empty(0, dtype=np.int64)
            return cls(empty, empty, 0)
        change = np.nonzero(arr[1:] != arr[:-1])[0]
        starts = np.concatenate(([0], change + 1))
        return cls(arr[starts].astype(np.int64), starts, len(arr))

    @property
    def n_distinct(self) -> int:
        return len(self.values)

    def _position_of_first_ge(self, value) -> int:
        """First position holding a value >= *value* (n_rows if none)."""
        idx = int(np.searchsorted(self.values, value, side="left"))
        if idx >= self.n_distinct:
            return self.n_rows
        return int(self.first_positions[idx])

    def _position_of_first_gt(self, value) -> int:
        idx = int(np.searchsorted(self.values, value, side="right"))
        if idx >= self.n_distinct:
            return self.n_rows
        return int(self.first_positions[idx])

    def lookup(self, predicate) -> RangePositions | None:
        """Positions matching *predicate*, or None when not a single range."""
        op, value = predicate.op, predicate.value
        if op == "<":
            return RangePositions(0, self._position_of_first_ge(value))
        if op == "<=":
            return RangePositions(0, self._position_of_first_gt(value))
        if op == ">":
            return RangePositions(self._position_of_first_gt(value), self.n_rows)
        if op == ">=":
            return RangePositions(self._position_of_first_ge(value), self.n_rows)
        if op == "=":
            return RangePositions(
                self._position_of_first_ge(value),
                self._position_of_first_gt(value),
            )
        return None  # "!=" is two ranges; compound predicates handled by caller

    def lookup_range(self, lo, hi) -> RangePositions:
        """Positions with values in the closed interval [lo, hi]."""
        return RangePositions(
            self._position_of_first_ge(lo), self._position_of_first_gt(hi)
        )

    def save(self, path: str | Path) -> None:
        with open(path, "wb") as f:
            f.write(MAGIC)
            f.write(
                np.array([self.n_distinct, self.n_rows], dtype=np.int64).tobytes()
            )
            f.write(self.values.tobytes())
            f.write(self.first_positions.tobytes())

    @classmethod
    def load(cls, path: str | Path) -> "ClusteredIndex":
        with open(path, "rb") as f:
            magic = f.read(len(MAGIC))
            if magic != MAGIC:
                raise StorageError(f"{path} is not a clustered index file")
            header = np.frombuffer(f.read(16), dtype=np.int64)
            k, n_rows = int(header[0]), int(header[1])
            values = np.frombuffer(f.read(8 * k), dtype=np.int64)
            firsts = np.frombuffer(f.read(8 * k), dtype=np.int64)
        return cls(values, firsts, n_rows)
