"""Per-column statistics: end-biased histograms.

Block min/max interpolation (the fallback estimator) assumes uniform values —
badly wrong for skewed columns. The histogram built at write time combines
the two classic fixes:

* **exact heavy hitters** — the most frequent values get exact counts
  (end-biased), so point and boundary queries around hot values are precise;
* **equi-depth bins** for the remaining mass — bin edges at quantiles, so
  skewed regions get narrow bins and every bin carries comparable mass.

Stored in the column file header; ``estimate(predicate)`` returns a
selectivity in ``[0, 1]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

DEFAULT_BINS = 64
DEFAULT_HEAVY_HITTERS = 16


@dataclass(frozen=True)
class ColumnHistogram:
    """Heavy hitters + equi-depth histogram over the residual mass.

    Attributes:
        common: ``(value, count)`` pairs for the most frequent values, exact.
        edges: strictly increasing bin edges over the residual values
            (``len(edges) == len(counts) + 1``; empty when no residual).
        counts: residual values per bin.
        n_values: total number of values (heavy + residual).
        n_distinct: exact distinct count at build time.
    """

    common: tuple[tuple[float, int], ...]
    edges: tuple[float, ...]
    counts: tuple[int, ...]
    n_values: int
    n_distinct: int

    @classmethod
    def build(
        cls,
        values: np.ndarray,
        bins: int = DEFAULT_BINS,
        heavy_hitters: int = DEFAULT_HEAVY_HITTERS,
    ) -> "ColumnHistogram":
        n = int(len(values))
        if n == 0:
            return cls((), (), (), 0, 0)
        uniques, unique_counts = np.unique(values, return_counts=True)
        distinct = int(len(uniques))

        # Exact counts for values holding disproportionate mass.
        k = min(heavy_hitters, distinct)
        threshold = n / max(bins, 1)
        order = np.argsort(unique_counts)[::-1][:k]
        hot = [i for i in order if unique_counts[i] >= threshold]
        common = tuple(
            (float(uniques[i]), int(unique_counts[i])) for i in sorted(hot)
        )
        hot_set = set(hot)

        residual_idx = [i for i in range(distinct) if i not in hot_set]
        if residual_idx:
            residual_values = np.repeat(
                uniques[residual_idx].astype(np.float64),
                unique_counts[residual_idx],
            )
            n_bins = max(1, min(bins, len(residual_idx)))
            quantiles = np.quantile(
                residual_values, np.linspace(0.0, 1.0, n_bins + 1)
            )
            edges = np.unique(quantiles)
            if len(edges) < 2:
                edges = np.array([edges[0], edges[0] + 1.0])
            counts, _ = np.histogram(residual_values, bins=edges)
            return cls(
                common=common,
                edges=tuple(float(e) for e in edges),
                counts=tuple(int(c) for c in counts),
                n_values=n,
                n_distinct=distinct,
            )
        return cls(common=common, edges=(), counts=(), n_values=n,
                   n_distinct=distinct)

    # ------------------------------------------------------------------ math

    @property
    def residual_total(self) -> int:
        return sum(self.counts)

    @property
    def residual_distinct(self) -> int:
        return max(self.n_distinct - len(self.common), 1)

    def _residual_mass_below(self, boundary: float) -> float:
        """Residual values strictly below *boundary* (interpolated)."""
        if not self.counts:
            return 0.0
        edges = self.edges
        if boundary <= edges[0]:
            return 0.0
        if boundary > edges[-1]:
            return float(self.residual_total)
        mass = 0.0
        for i, count in enumerate(self.counts):
            lo, hi = edges[i], edges[i + 1]
            if boundary >= hi:
                mass += count
            elif boundary > lo:
                mass += count * (boundary - lo) / (hi - lo)
                break
            else:
                break
        return mass

    def _residual_point_mass(self, value: float) -> float:
        if not self.counts or not self.edges[0] <= value <= self.edges[-1]:
            return 0.0
        index = int(np.searchsorted(self.edges, value, side="right")) - 1
        index = min(max(index, 0), len(self.counts) - 1)
        distinct_per_bin = max(self.residual_distinct / len(self.counts), 1.0)
        return self.counts[index] / distinct_per_bin

    def _point_mass(self, value: float) -> float:
        for v, count in self.common:
            if v == value:
                return float(count)
        return self._residual_point_mass(value)

    def _mass_below(self, boundary: float) -> float:
        exact = sum(count for v, count in self.common if v < boundary)
        return exact + self._residual_mass_below(boundary)

    def estimate(self, pred) -> float:
        """Estimated selectivity of a predicate against this column."""
        if self.n_values == 0:
            return 0.0
        in_values = getattr(pred, "in_values", None)
        if in_values is not None:
            mass = sum(self._point_mass(v) for v in in_values)
        else:
            op, value = pred.op, pred.value
            if op == "<":
                mass = self._mass_below(value)
            elif op == "<=":
                mass = self._mass_below(value) + self._point_mass(value)
            elif op == ">":
                mass = (
                    self.n_values
                    - self._mass_below(value)
                    - self._point_mass(value)
                )
            elif op == ">=":
                mass = self.n_values - self._mass_below(value)
            elif op == "=":
                mass = self._point_mass(value)
            else:  # "!="
                mass = self.n_values - self._point_mass(value)
        return min(max(mass / self.n_values, 0.0), 1.0)

    # ----------------------------------------------------------- persistence

    def to_json(self) -> dict:
        return {
            "common": [[v, c] for v, c in self.common],
            "edges": list(self.edges),
            "counts": list(self.counts),
            "n_values": self.n_values,
            "n_distinct": self.n_distinct,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ColumnHistogram":
        return cls(
            common=tuple((float(v), int(c)) for v, c in data["common"]),
            edges=tuple(data["edges"]),
            counts=tuple(data["counts"]),
            n_values=data["n_values"],
            n_distinct=data["n_distinct"],
        )
