"""Structured execution spans: the engine's EXPLAIN ANALYZE substrate.

Every operator application (DS1-DS4, SPC, AND, MERGE, JOIN, AGG, OUTPUT —
the paper's Section 3 operator set) is recorded as a :class:`Span` in a tree
rooted at one ``query`` span. A span captures four things:

* **wall-clock time** — measured around the operator's execution;
* **simulated-time attribution** — the span's share of the analytical
  model's Table 1 terms, obtained by snapshotting the query's
  :class:`~repro.metrics.QueryStats` counters at span entry and exit.  The
  *cumulative* delta includes nested child spans; :meth:`Span.self_stats`
  subtracts the children so per-span *self* simulated times always sum
  (exactly, modulo float association) to the whole query's
  :func:`~repro.model.cost.simulated_time_ms`;
* **cardinalities** — rows / positions / tuples produced, from the
  operator-specific ``detail`` mapping;
* **cache interactions** — buffer-pool hits, decoded-cache hits/misses and
  physical reads, all of which are ``QueryStats`` counters and therefore
  attributed per span by the same snapshot mechanism.

Tracing is strictly opt-in: with no tracer on the
:class:`~repro.operators.base.ExecutionContext`, ``ctx.begin`` returns
``None`` without allocating and operators skip their ``ctx.end`` call, so
the hot path is untouched (guarded by the tracing-overhead benchmark).

Error behaviour: when an operator raises mid-span (e.g. a
:class:`~repro.errors.CorruptBlockError` from a scan), the tracer's
:meth:`SpanTracer.finish` closes every open span bottom-up with
``status="error"``, yielding a truncated-but-valid tree — no dangling open
spans, even for scheduler-parallelised leaves (the scan scheduler adopts
each leaf's spans, finished, in deterministic task order).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields

from .metrics import QueryStats

#: Numeric QueryStats fields, snapshotted at span boundaries.
_COUNTER_FIELDS: tuple[str, ...] = tuple(
    f.name for f in fields(QueryStats) if f.name != "extra"
)

#: ``detail`` keys probed (in order) for a span's output cardinality.
_ROWS_KEYS = ("rows", "tuples", "tuples_out", "positions", "positions_out",
              "matches")


@dataclass
class Span:
    """One operator application in the EXPLAIN ANALYZE tree.

    ``stats`` is the *cumulative* QueryStats delta over the span's lifetime,
    including every child span; :meth:`self_stats` gives the exclusive share.
    ``status`` is ``"open"`` while executing, then ``"ok"`` or ``"error"``
    (the span was truncated by an exception).
    """

    name: str
    detail: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    wall_ms: float = 0.0
    stats: QueryStats = field(default_factory=QueryStats)
    status: str = "open"

    # ------------------------------------------------------------- analysis

    @property
    def rows_out(self) -> int | None:
        """Output cardinality, if the operator reported one."""
        for key in _ROWS_KEYS:
            value = self.detail.get(key)
            if value is not None:
                return int(value)
        return None

    def self_stats(self) -> QueryStats:
        """Counter delta exclusive to this span (cumulative minus children)."""
        own = QueryStats()
        own.merge(self.stats)
        for child in self.children:
            for name in _COUNTER_FIELDS:
                setattr(
                    own, name, getattr(own, name) - getattr(child.stats, name)
                )
            for key, value in child.stats.extra.items():
                own.extra[key] = own.extra.get(key, 0) - value
        own.extra = {k: v for k, v in own.extra.items() if v}
        return own

    def simulated_ms(self, constants) -> float:
        """Model-replay milliseconds of the span including its children."""
        from .model.cost import simulated_time_ms

        return simulated_time_ms(self.stats, constants)

    def self_simulated_ms(self, constants) -> float:
        """Model-replay milliseconds exclusive to this span.

        Summing this over every span of a tree reconstructs the whole
        query's ``simulated_time_ms`` (children are never double-counted).
        """
        from .model.cost import simulated_time_ms

        return simulated_time_ms(self.self_stats(), constants)

    # ------------------------------------------------------------ traversal

    def walk(self):
        """Yield this span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """All spans named *name* in this subtree, pre-order."""
        return [s for s in self.walk() if s.name == name]

    def open_spans(self) -> list["Span"]:
        """Spans still marked ``open`` (must be empty after finish())."""
        return [s for s in self.walk() if s.status == "open"]

    def events(self, include_self: bool = False) -> list[tuple[str, dict]]:
        """Flat ``(operator, detail)`` events, children before parents.

        This is the legacy trace representation (operators used to append an
        event when they *finished*), kept as a derived view so existing
        consumers of ``QueryResult.trace`` keep working.
        """
        out: list[tuple[str, dict]] = []
        for child in self.children:
            out.extend(child.events(include_self=True))
        if include_self:
            out.append((self.name, self.detail))
        return out

    # --------------------------------------------------------------- export

    def to_dict(self, constants=None) -> dict:
        """JSON-safe representation of the subtree (for ``--json`` export)."""
        out = {
            "operator": self.name,
            "status": self.status,
            "detail": {k: _jsonable(v) for k, v in self.detail.items()},
            "wall_ms": round(self.wall_ms, 4),
            "rows_out": self.rows_out,
            "counters": {
                k: v for k, v in self.stats.as_dict().items() if v
            },
        }
        if constants is not None:
            out["simulated_ms"] = round(self.simulated_ms(constants), 4)
            out["self_simulated_ms"] = round(
                self.self_simulated_ms(constants), 4
            )
        if self.children:
            out["children"] = [c.to_dict(constants) for c in self.children]
        return out


def _jsonable(value):
    """Coerce numpy scalars and other oddities to plain JSON types."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class SpanTracer:
    """Builds the span tree for one query execution.

    Construction opens the root ``query`` span against the given
    :class:`QueryStats` instance (the one every operator mutates in place).
    Operators call :meth:`begin` / :meth:`end` in LIFO order;
    :meth:`finish` closes whatever remains open — the normal end-of-query
    path closes just the root, the error path also closes truncated
    operator spans with ``status="error"``.
    """

    def __init__(self, stats: QueryStats, clock=time.perf_counter):
        self.stats = stats
        self.clock = clock
        self.root = Span(name="query")
        self._stack: list[tuple[Span, float, tuple, dict]] = [
            (self.root, clock(), self._snapshot(), dict(stats.extra))
        ]

    def _snapshot(self) -> tuple:
        stats = self.stats
        return tuple(getattr(stats, name) for name in _COUNTER_FIELDS)

    # ------------------------------------------------------------ recording

    def begin(self, name: str) -> Span:
        """Open a child span of the innermost open span."""
        span = Span(name=name)
        self._stack[-1][0].children.append(span)
        self._stack.append(
            (span, self.clock(), self._snapshot(), dict(self.stats.extra))
        )
        return span

    def end(self, span: Span, **detail) -> None:
        """Close *span* (which must be the innermost open span)."""
        entry = self._stack.pop()
        if entry[0] is not span:  # pragma: no cover - operator bug guard
            self._stack.append(entry)
            raise RuntimeError(
                f"span {span.name!r} closed out of order "
                f"(innermost open is {entry[0].name!r})"
            )
        self._close(entry, detail, status="ok")

    def _close(self, entry, detail: dict, status: str) -> None:
        span, t0, snap0, extra0 = entry
        span.wall_ms = (self.clock() - t0) * 1000.0
        now = self._snapshot()
        for name, before, after in zip(_COUNTER_FIELDS, snap0, now):
            setattr(span.stats, name, after - before)
        for key, value in self.stats.extra.items():
            delta = value - extra0.get(key, 0)
            if delta:
                span.stats.extra[key] = delta
        span.detail.update(detail)
        span.status = status

    # ----------------------------------------------------------- completion

    def finish(self, error: BaseException | None = None) -> Span:
        """Close every remaining open span (idempotent) and return the root.

        Spans other than the root are only still open when an exception cut
        execution short; they are closed bottom-up with ``status="error"``
        and the error's type recorded, producing a truncated-but-valid tree.
        """
        while self._stack:
            entry = self._stack.pop()
            span = entry[0]
            if span is self.root:
                self._close(
                    entry,
                    {"error": type(error).__name__} if error else {},
                    status="error" if error else "ok",
                )
            else:
                self._close(
                    entry,
                    {"error": type(error).__name__ if error else "truncated"},
                    status="error",
                )
        return self.root

    def unwind(self, span: Span, error: BaseException, **detail) -> None:
        """Close every open span up to and including *span* as errored.

        The degraded-execution path catches a storage failure *inside* a
        partition's task and keeps executing; whatever spans the failure cut
        short (a DS1 scan, a RETRY, the PARTITION span itself) are closed
        bottom-up with ``status="error"`` — the partitioned analogue of
        :meth:`finish`'s error path, but scoped to one subtree so the query
        span stays open for the surviving partitions.
        """
        while self._stack:
            entry = self._stack.pop()
            if entry[0] is span:
                self._close(
                    entry,
                    {**detail, "error": type(error).__name__},
                    status="error",
                )
                return
            self._close(
                entry, {"error": type(error).__name__}, status="error"
            )
        raise RuntimeError(  # pragma: no cover - operator bug guard
            f"span {span.name!r} was not open; cannot unwind to it"
        )

    def adopt(self, leaf: "SpanTracer", error: BaseException | None = None) -> None:
        """Graft a leaf context's spans under the innermost open span.

        The scan scheduler calls this once per parallel leaf, in task order,
        after the barrier — so adopted spans land deterministically however
        the threads interleaved. The leaf tracer is finished first (closing
        any span its task left open when it raised *error*); its synthetic
        root is discarded and only the operator spans are kept.
        """
        leaf.finish(error)
        parent = self._stack[-1][0] if self._stack else self.root
        parent.children.extend(leaf.root.children)
