"""Deterministic, seedable transient-fault injection for block reads.

Production column stores survive flaky devices — C-Store's K-safety and the
durability machinery of LSM-based columnar stores both assume storage fails
*sometimes* and build recovery around that. This module gives the
reproduction the same property in testable form: a :class:`FaultInjector`
hooked into the buffer pool's physical block reads
(:meth:`repro.buffer.pool.BufferPool.get`) injects three kinds of fault
according to a declarative schedule of :class:`FaultRule` entries:

* ``transient`` — the read raises :class:`~repro.errors.TransientIOError`;
  a bounded number of attempts fail, after which the block reads fine, so a
  retry policy with enough attempts always recovers. This models cable
  glitches, controller timeouts, kernel EIO-with-retry.
* ``corrupt``   — the read raises :class:`~repro.errors.CorruptBlockError`
  on *every* attempt, modelling persistent bit rot that checksum
  verification catches. Only quarantine (or repair) gets past it.
* ``slow``      — the read succeeds but charges extra microseconds to the
  simulated disk clock, modelling a degraded device or a deep queue.

Determinism: whether a given ``(path, block)`` is faulty is decided by a
keyed BLAKE2 hash of the injector seed and the block identity — never by a
shared RNG stream — so the schedule is identical run-over-run *and*
independent of thread interleaving under the parallel scan scheduler. The
per-block attempt counters are guarded by one lock.

The hook is nearly free when disabled: ``BufferPool`` holds ``injector =
None`` and skips the call entirely (guarded by
``benchmarks/bench_fault_overhead.py``).
"""

from __future__ import annotations

import fnmatch
import hashlib
import os
import threading
from dataclasses import dataclass, field

from .errors import (
    CorruptBlockError,
    QuarantinedPartitionError,
    TransientIOError,
)
from .metrics import QueryStats

#: Environment variable the test harness reads to vary fault schedules in CI.
FAULT_SEED_ENV = "REPRO_FAULT_SEED"

#: Environment variable the crash-matrix job reads to vary crash workloads.
CRASH_SEED_ENV = "REPRO_CRASH_SEED"


def fault_seed_from_env(default: int = 0) -> int:
    """The CI fault-matrix seed (``REPRO_FAULT_SEED``), or *default*."""
    return int(os.environ.get(FAULT_SEED_ENV, str(default)))


def crash_seed_from_env(default: int = 0) -> int:
    """The CI crash-matrix seed (``REPRO_CRASH_SEED``), or *default*."""
    return int(os.environ.get(CRASH_SEED_ENV, str(default)))


@dataclass(frozen=True)
class FaultRule:
    """One declarative entry of a fault schedule.

    Attributes:
        kind: ``"transient"``, ``"corrupt"``, or ``"slow"``.
        path_glob: ``fnmatch`` pattern the column file path (or its
            basename) must match; ``"*"`` matches every file.
        block_index: restrict the rule to one block ordinal, or ``None``
            for any block.
        probability: fraction of matching blocks the rule selects
            (decided per ``(path, block)`` by the injector's keyed hash, so
            the selection is deterministic for a given seed).
        times: for ``transient`` rules, how many attempts on a selected
            block fail before reads succeed again. Ignored for ``corrupt``
            (always fails) and ``slow`` (never fails).
        latency_us: for ``slow`` rules, microseconds added to the simulated
            disk clock per read of a selected block.
    """

    kind: str
    path_glob: str = "*"
    block_index: int | None = None
    probability: float = 1.0
    times: int = 1
    latency_us: float = 0.0

    def __post_init__(self):
        if self.kind not in ("transient", "corrupt", "slow"):
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def matches(self, path: str, index: int) -> bool:
        if self.block_index is not None and index != self.block_index:
            return False
        return fnmatch.fnmatch(path, self.path_glob) or fnmatch.fnmatch(
            os.path.basename(path), self.path_glob
        )


class FaultInjector:
    """Applies a fault schedule to physical block reads, deterministically.

    The buffer pool calls :meth:`on_read` immediately before every physical
    block read (cache hits never consult the injector — a resident block
    cannot fail). ``on_read`` either returns extra simulated latency to
    charge (``slow`` faults, usually ``0.0``) or raises
    :class:`~repro.errors.TransientIOError` /
    :class:`~repro.errors.CorruptBlockError` with a message naming the file
    and block.
    """

    def __init__(self, rules=(), seed: int = 0):
        self.rules: tuple[FaultRule, ...] = tuple(rules)
        self.seed = seed
        self._attempts: dict[tuple[str, int, int], int] = {}
        self._lock = threading.Lock()
        #: Faults injected so far, by kind (for tests and metrics).
        self.injected: dict[str, int] = {
            "transient": 0, "corrupt": 0, "slow": 0,
        }

    # ------------------------------------------------------------ selection

    def _selects(self, rule_index: int, rule: FaultRule,
                 path: str, index: int) -> bool:
        """Keyed-hash draw: does *rule* select this ``(path, block)``?

        Hashing the basename (not the absolute path) keeps schedules stable
        across database roots — the same logical file is selected whether
        the database lives in /tmp or a test fixture directory.
        """
        if rule.probability >= 1.0:
            return True
        if rule.probability <= 0.0:
            return False
        key = f"{self.seed}:{rule_index}:{os.path.basename(path)}:{index}"
        digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
        draw = int.from_bytes(digest, "big") / float(1 << 64)
        return draw < rule.probability

    # ----------------------------------------------------------------- hook

    def on_read(self, path: str, index: int,
                stats: QueryStats | None = None) -> float:
        """Consult the schedule for one physical read attempt.

        Returns extra simulated latency in microseconds (``slow`` faults;
        ``0.0`` otherwise) or raises the scheduled error. Each call counts
        as one attempt against the matching rules' per-block budgets.
        """
        latency = 0.0
        for rule_index, rule in enumerate(self.rules):
            if not rule.matches(path, index):
                continue
            if not self._selects(rule_index, rule, path, index):
                continue
            if rule.kind == "slow":
                latency += rule.latency_us
                with self._lock:
                    self.injected["slow"] += 1
                continue
            if rule.kind == "corrupt":
                with self._lock:
                    self.injected["corrupt"] += 1
                raise CorruptBlockError(
                    f"{path}: block {index} failed checksum validation "
                    "(injected corruption)"
                )
            # transient: the first `times` attempts fail, later ones succeed.
            key = (path, index, rule_index)
            with self._lock:
                attempt = self._attempts.get(key, 0)
                self._attempts[key] = attempt + 1
                if attempt < rule.times:
                    self.injected["transient"] += 1
                    raise TransientIOError(
                        f"{path}: block {index} transient I/O error "
                        f"(injected, attempt {attempt + 1})"
                    )
        return latency

    # ------------------------------------------------------------ lifecycle

    def reset(self) -> None:
        """Forget attempt counters and injection tallies (fresh schedule)."""
        with self._lock:
            self._attempts.clear()
            for kind in self.injected:
                self.injected[kind] = 0

    def metrics(self) -> dict:
        """Injection tallies for the metrics registry's collector interface."""
        with self._lock:
            return {"rules": len(self.rules), "seed": self.seed,
                    **{f"injected_{k}": v for k, v in self.injected.items()}}


class SimulatedCrash(BaseException):
    """Process death injected at a write-path boundary.

    Deliberately a :class:`BaseException`: the crash must tear straight
    through ``except Exception`` cleanup (the qlog writer, retry loops) the
    way a real ``kill -9`` would, so no layer can "handle" its own death.
    The harness catches it at the very top, abandons the database object,
    and reopens the directory cold to exercise recovery.
    """

    def __init__(self, op: str, path: str, step: int):
        super().__init__(f"simulated crash at boundary {step}: {op} {path}")
        self.op = op
        self.path = path
        self.step = step


@dataclass(frozen=True)
class CrashPoint:
    """One declarative entry of a crash schedule.

    Attributes:
        op_glob: ``fnmatch`` pattern the boundary's operation name must
            match (``wal.append``, ``wal.torn``, ``wal.fsync``,
            ``wal.truncate``, ``file.write``, ``file.fsync``, ``dir.fsync``,
            ``rename``, ``replace``, ``rmtree``); ``"*"`` matches every
            boundary.
        path_glob: ``fnmatch`` pattern the file path (or its basename) must
            match; ``"*"`` matches every file.
        probability: fraction of matching boundaries the point selects,
            decided by a keyed BLAKE2 hash of the injector seed, the
            boundary's operation, basename, and ordinal — deterministic for
            a given seed, exactly like :class:`FaultRule` selection.
    """

    op_glob: str = "*"
    path_glob: str = "*"
    probability: float = 1.0

    def matches(self, op: str, path: str) -> bool:
        if not fnmatch.fnmatch(op, self.op_glob):
            return False
        return fnmatch.fnmatch(path, self.path_glob) or fnmatch.fnmatch(
            os.path.basename(path), self.path_glob
        )


class CrashInjector:
    """Deterministic, seedable crash-point injection for the write path.

    Every durability-relevant boundary in the write path — WAL appends and
    fsyncs, staging-file writes, directory fsyncs, renames, the manifest
    ``os.replace`` commit point, post-commit cleanup — calls :meth:`hook`
    with an operation name and a path. The injector counts boundaries on a
    monotone step counter and raises :class:`SimulatedCrash` when either

    * ``crash_at == step`` — exhaustive enumeration mode: the differential
      harness first runs the workload with a passive injector to count the
      boundaries, then replays it once per ordinal, crashing each boundary
      in turn; or
    * a :class:`CrashPoint` selects the boundary by keyed hash — schedule
      mode, mirroring :class:`FaultRule`.

    Like the fault injector, the hook is free when disabled (``crash = None``
    callers skip it entirely; guarded by ``benchmarks/bench_write_path.py``).
    """

    def __init__(self, points=(), seed: int = 0, crash_at: int | None = None):
        self.points: tuple[CrashPoint, ...] = tuple(points)
        self.seed = seed
        self.crash_at = crash_at
        self.steps = 0
        #: The crash this injector raised, if any (for the harness).
        self.crashed: SimulatedCrash | None = None
        self._lock = threading.Lock()

    def _selects(self, point_index: int, point: CrashPoint,
                 op: str, path: str, step: int) -> bool:
        if point.probability >= 1.0:
            return True
        if point.probability <= 0.0:
            return False
        key = (
            f"{self.seed}:{point_index}:{op}:"
            f"{os.path.basename(path)}:{step}"
        )
        digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
        draw = int.from_bytes(digest, "big") / float(1 << 64)
        return draw < point.probability

    def check(self, op: str, path: str) -> bool:
        """Count one boundary; True when the schedule says to crash here.

        Exposed separately from :meth:`hook` for sites that must do partial
        work *before* dying (the torn-WAL-tail write).
        """
        with self._lock:
            self.steps += 1
            step = self.steps
        if self.crash_at is not None:
            return step == self.crash_at
        for i, point in enumerate(self.points):
            if point.matches(op, str(path)) and self._selects(
                i, point, op, str(path), step
            ):
                return True
        return False

    def hook(self, op: str, path) -> None:
        """Die here if the schedule selects this boundary."""
        if self.check(op, str(path)):
            raise self.crash(op, str(path))

    def crash(self, op: str, path: str) -> SimulatedCrash:
        """Record and return the :class:`SimulatedCrash` for this boundary."""
        exc = SimulatedCrash(op, str(path), self.steps)
        self.crashed = exc
        return exc

    def reset(self) -> None:
        """Restart the boundary counter (fresh workload, same schedule)."""
        with self._lock:
            self.steps = 0
            self.crashed = None

    def metrics(self) -> dict:
        """Crash-schedule state for the metrics registry's collectors."""
        with self._lock:
            return {
                "points": len(self.points),
                "seed": self.seed,
                "crash_at": self.crash_at,
                "steps": self.steps,
                "crashed": self.crashed is not None,
            }


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with simulated exponential backoff for block reads.

    Attributes:
        attempts: total read attempts per block (1 = no retry).
        backoff_us: simulated microseconds charged before retry *n* as
            ``backoff_us * 2**(n-1)`` — the backoff enters
            ``QueryStats.simulated_io_us`` (and therefore the model-replay
            time), never wall-clock: the engine does not actually sleep.
    """

    attempts: int = 3
    backoff_us: float = 500.0

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError("RetryPolicy needs at least one attempt")

    def backoff_for(self, retry_number: int) -> float:
        """Simulated backoff before the *retry_number*-th retry (1-based)."""
        return self.backoff_us * (2.0 ** (retry_number - 1))


#: Retry disabled: a single attempt, matching the pre-fault-layer engine.
NO_RETRY = RetryPolicy(attempts=1, backoff_us=0.0)


class PartitionQuarantine:
    """Session-scoped registry of partitions taken out of service.

    With ``Database(on_error="degrade")``, a partition that exhausts its
    retry budget or fails checksum validation is *quarantined*: a
    :class:`~repro.errors.QuarantinedPartitionError` is recorded here and
    every later query in the session skips the partition up front (and is
    marked degraded), instead of re-discovering the failure block by block.
    The registry is shared by the parallel scan leaves, so access is locked.
    """

    def __init__(self):
        self._entries: "dict[tuple[str, str], QuarantinedPartitionError]" = {}
        self._lock = threading.Lock()

    def record(
        self, projection: str, partition: str, cause: BaseException | str
    ) -> QuarantinedPartitionError:
        """Quarantine one partition (idempotent; first cause wins)."""
        error = QuarantinedPartitionError(projection, partition, str(cause))
        with self._lock:
            return self._entries.setdefault((projection, partition), error)

    def is_quarantined(self, projection: str, partition: str) -> bool:
        with self._lock:
            return (projection, partition) in self._entries

    def entries(self) -> list[QuarantinedPartitionError]:
        """Every recorded quarantine, in (projection, partition) order."""
        with self._lock:
            return [self._entries[k] for k in sorted(self._entries)]

    def release(self, projection: str, partition: str) -> bool:
        """Take a partition back into service (after an operator repaired
        it); True when it was quarantined."""
        with self._lock:
            return self._entries.pop((projection, partition), None) is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def metrics(self) -> dict:
        """Quarantine state for the metrics registry's collector interface."""
        with self._lock:
            return {
                "quarantined": len(self._entries),
                "partitions": [
                    f"{proj}/{part}" for proj, part in sorted(self._entries)
                ],
            }
