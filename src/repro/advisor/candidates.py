"""Candidate physical designs distilled from a workload summary.

The generator reads the advisor-grade :class:`~repro.workload.
WorkloadSummary` — per-template counts, example queries, predicate and
column-touch statistics — and proposes projection builds: for each hot
predicate column that no existing candidate of its table is sorted on,
a projection sorted by that column, covering exactly the columns the
predicated templates touch, with encodings and a partition count chosen
from the column's statistics. Scoring (and the decision to recommend
anything at all) happens in :mod:`repro.advisor.plan` via what-if costing;
this module only enumerates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CatalogError

#: Expected sorted-run length above which the sort column also stores an
#: RLE representation (runs shorter than this decode slower than they
#: save).
_RLE_RUN_THRESHOLD = 2.0

#: Sorted rows above which a range-predicated sort column is worth
#: range-partitioning (below it, zone maps cannot prune enough blocks to
#: pay for the fan-out).
_PARTITION_MIN_ROWS = 100_000

_RANGE_OPS = ("<", "<=", ">", ">=")


@dataclass
class CandidateDesign:
    """One enumerable build: a projection that does not exist yet."""

    name: str
    anchor: str
    columns: tuple
    sort_keys: tuple
    encodings: dict = field(default_factory=dict)
    partitions: int = 1
    #: Workload weight (ok-query count) behind the sort column's
    #: predicates — the enumeration order, not the score.
    weight: int = 0
    reason: str = ""


def _anchor_of(catalog, table: str) -> str | None:
    """Resolve a query's projection field to its logical table name."""
    if table in catalog:
        proj = catalog.get(table)
        return proj.anchor or proj.name
    if catalog.has(table):
        return table
    return None


def _template_weight(template) -> int:
    return template.outcomes.get("ok", 0) + template.outcomes.get(
        "degraded", 0
    )


def _existing_sort_columns(catalog, anchor: str) -> set:
    """Primary sort keys already served by some candidate of *anchor*."""
    out = set()
    for proj in catalog.candidates(anchor):
        if proj.sort_keys:
            out.add(proj.sort_keys[0])
    return out


def _unpartitioned_source(catalog, anchor: str, columns):
    """A real projection the build can read its rows (and stats) from."""
    needed = set(columns)
    for proj in catalog.candidates(anchor):
        if proj.is_partitioned:
            continue
        if needed <= set(proj.column_names):
            return proj
    return None


def generate_candidates(
    catalog, summary, max_candidates: int = 12
) -> list[CandidateDesign]:
    """Enumerate build candidates from observed predicate statistics."""
    # (anchor, predicate column) -> accumulated evidence.
    evidence: dict[tuple, dict] = {}
    for template in summary.templates.values():
        if template.kind != "select" or template.example_query is None:
            continue
        weight = _template_weight(template)
        if weight == 0:
            continue
        qdict = template.example_query
        anchor = _anchor_of(catalog, qdict.get("projection", ""))
        if anchor is None:
            continue
        touched = set(qdict.get("select") or ())
        touched.update(qdict.get("group_by") or ())
        for agg in qdict.get("aggregates") or ():
            if agg.get("column"):
                touched.add(agg["column"])
        pred_cols = []
        ops = []
        for pred in qdict.get("predicates") or ():
            pred_cols.append(pred["column"])
            ops.append("in" if "in" in pred else pred.get("op", "="))
        touched.update(pred_cols)
        for col, op in zip(pred_cols, ops):
            entry = evidence.setdefault(
                (anchor, col),
                {"weight": 0, "columns": set(), "range_weight": 0},
            )
            entry["weight"] += weight
            entry["columns"].update(touched)
            if op in _RANGE_OPS:
                entry["range_weight"] += weight

    candidates = []
    for (anchor, col), entry in evidence.items():
        if col in _existing_sort_columns(catalog, anchor):
            continue
        columns = entry["columns"] | {col}
        source = _unpartitioned_source(catalog, anchor, columns)
        if source is None:
            # Drop columns the anchor cannot serve from one projection
            # (or that cannot be rebuilt at all) and retry with the core.
            source = _unpartitioned_source(catalog, anchor, {col})
            if source is None:
                continue
            columns = columns & set(source.column_names)
        # float64 columns cannot be written back (Projection.create
        # rejects them); leave them to the projections that have them.
        columns = {
            c
            for c in columns
            if source.schema(c).ctype.name != "float64"
        }
        if col not in columns:
            continue
        try:
            histogram = source.physical_column(col).file().histogram
        except CatalogError:
            continue
        n_rows = source.n_rows
        distinct = (
            histogram.n_distinct
            if histogram is not None and histogram.n_values
            else max(n_rows, 1)
        )
        run_length = n_rows / max(distinct, 1)
        encodings = {
            c: ("uncompressed",) for c in sorted(columns) if c != col
        }
        if run_length >= _RLE_RUN_THRESHOLD:
            encodings[col] = ("rle", "uncompressed")
        else:
            encodings[col] = ("uncompressed",)
        partitions = 1
        if (
            entry["range_weight"] > entry["weight"] / 2
            and n_rows >= _PARTITION_MIN_ROWS
        ):
            partitions = 4
        candidates.append(
            CandidateDesign(
                name=f"{anchor}_adv_{col}",
                anchor=anchor,
                columns=tuple(sorted(columns)),
                sort_keys=(col,),
                encodings=encodings,
                partitions=partitions,
                weight=entry["weight"],
                reason=(
                    f"{entry['weight']} ok queries predicate on "
                    f"{col!r}, which no projection of {anchor!r} is "
                    "sorted on"
                ),
            )
        )
    candidates.sort(key=lambda c: (-c.weight, c.name))
    return candidates[:max_candidates]
