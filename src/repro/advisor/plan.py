"""Advisor plans: score candidates, rank actions, and apply them.

:func:`advise` closes the loop from observed workload to physical design:

1. distill the query log into weighted templates (``summarize_log``);
2. score the **current** design with the router's own candidate × strategy
   minimization (:func:`~repro.advisor.whatif.evaluate_design`) — this is
   the no-op plan's score, identical by construction to what a plan with
   no actions predicts;
3. greedily add the build candidate with the largest weighted
   predicted-ms delta, re-scoring the remainder against the grown design,
   until nothing improves (adding a candidate can only shrink each
   template's minimum, so per-template deltas are never negative);
4. flag unused advisor-built projections — anchored, never resolved to by
   a logged query, and not the final design's choice for any template —
   as drops.

:func:`apply_plan` executes a plan through the existing catalog + merge
machinery: builds read their rows from a covering stored projection
(merging pending inserts first so no rows are stranded) and write through
``Catalog.create_projection``; drops go through ``Database.
drop_projection``. Applying a plan never rewrites existing projections,
and replay pins each logged query to its recorded projection, so all
previously logged results stay bit-identical — the advisor differential
axis proves exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CatalogError
from ..workload import summarize_log
from .candidates import (
    CandidateDesign,
    _template_weight,
    _unpartitioned_source,
    generate_candidates,
)
from .whatif import WhatIfCatalog, evaluate_design, hypothetical_projection

#: A candidate must shave at least this fraction of the weighted baseline
#: to be recommended — smaller wins are inside the model's noise floor.
_MIN_RELATIVE_GAIN = 1e-3


@dataclass
class AdvisorAction:
    """One step of an advisor plan."""

    kind: str  # "build" | "drop"
    name: str
    anchor: str | None = None
    columns: tuple = ()
    sort_keys: tuple = ()
    encodings: dict = field(default_factory=dict)
    partitions: int = 1
    #: Weighted predicted simulated-ms the workload saves (positive =
    #: improvement); 0 for drops, which only reclaim storage.
    predicted_delta_ms: float = 0.0
    #: fingerprint -> weighted predicted delta, for the templates this
    #: action improves.
    templates: dict = field(default_factory=dict)
    reason: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "anchor": self.anchor,
            "columns": list(self.columns),
            "sort_keys": list(self.sort_keys),
            "encodings": {c: list(e) for c, e in self.encodings.items()},
            "partitions": self.partitions,
            "predicted_delta_ms": round(self.predicted_delta_ms, 3),
            "templates": {
                fp: round(delta, 3) for fp, delta in self.templates.items()
            },
            "reason": self.reason,
        }


@dataclass
class AdvisorPlan:
    """Ranked actions plus the what-if accounting behind them."""

    actions: list = field(default_factory=list)
    #: Weighted predicted ms of the current design over the scoreable
    #: templates — the no-op plan's score.
    baseline_ms: float = 0.0
    #: Weighted predicted ms after every recommended build.
    predicted_ms: float = 0.0
    n_templates: int = 0
    n_records: int = 0
    #: Scoreable-template fingerprints (what the totals range over).
    scored_templates: tuple = ()

    @property
    def predicted_improvement(self) -> float:
        """baseline / predicted (1.0 = no change)."""
        if self.predicted_ms <= 0:
            return 1.0
        return self.baseline_ms / self.predicted_ms

    def to_dict(self) -> dict:
        return {
            "actions": [a.to_dict() for a in self.actions],
            "baseline_ms": round(self.baseline_ms, 3),
            "predicted_ms": round(self.predicted_ms, 3),
            "predicted_improvement": round(self.predicted_improvement, 4),
            "n_templates": self.n_templates,
            "n_records": self.n_records,
        }

    def render(self) -> str:
        lines = [
            f"records        {self.n_records}",
            f"templates      {self.n_templates} "
            f"({len(self.scored_templates)} scoreable)",
            f"predicted ms   {self.baseline_ms:.1f} -> "
            f"{self.predicted_ms:.1f} weighted "
            f"({self.predicted_improvement:.2f}x)",
        ]
        if not self.actions:
            lines.append("advice         none — current design is best")
            return "\n".join(lines)
        lines.append(f"advice         {len(self.actions)} actions:")
        for a in self.actions:
            if a.kind == "build":
                enc = ", ".join(
                    f"{c}:{'/'.join(e)}" for c, e in sorted(
                        a.encodings.items()
                    )
                )
                detail = (
                    f"sort=({', '.join(a.sort_keys)}) "
                    f"cols=({', '.join(a.columns)}) "
                    f"partitions={a.partitions} [{enc}]"
                )
                lines.append(
                    f"  BUILD {a.name:<28} {detail}"
                )
                lines.append(
                    f"        predicted -{a.predicted_delta_ms:.1f} ms "
                    f"weighted over {len(a.templates)} templates; "
                    f"{a.reason}"
                )
            else:
                lines.append(f"  DROP  {a.name:<28} {a.reason}")
        return "\n".join(lines)


def _weighted_queries(summary):
    """(fingerprint, weight, query) triples for scoreable templates."""
    from ..serving.protocol import query_from_dict

    out = []
    for fp, template in sorted(summary.templates.items()):
        if template.kind != "select" or template.example_query is None:
            continue
        weight = _template_weight(template)
        if weight == 0:
            continue
        try:
            query = query_from_dict(template.example_query)
        except Exception:
            continue
        out.append((fp, weight, query))
    return out


def _recorded_projections(summary) -> set:
    """Every projection name a logged query is recorded to have used."""
    used = set()
    for template in summary.templates.values():
        used.update(template.projections)
    return used


def advise(
    db,
    records=None,
    constants=None,
    max_builds: int = 3,
    max_candidates: int = 12,
) -> AdvisorPlan:
    """Recommend physical design changes from an observed workload.

    *records* is an iterable of query-log dicts; when omitted, the
    database's own query log is flushed and read. *constants* defaults to
    ``db.constants`` — pass :attr:`~repro.model.recalibrate.
    CalibrationReport.constants` from ``repro calibrate --from-log`` to
    score with trace-fitted prices.
    """
    if records is None:
        if db.qlog is None:
            raise CatalogError(
                "advise needs records: the database has no query log "
                "(pass records= or open with query_log=True)"
            )
        db.qlog.flush()
        from ..qlog import read_query_log

        records = read_query_log(db.qlog.directory)
    records = list(records)
    if constants is None:
        constants = db.constants
    summary = summarize_log(records, db=db, constants=constants)
    weighted = _weighted_queries(summary)

    baseline_view = WhatIfCatalog(db.catalog)
    baseline_total, baseline_per = evaluate_design(
        baseline_view, weighted, constants
    )
    plan = AdvisorPlan(
        baseline_ms=baseline_total,
        predicted_ms=baseline_total,
        n_templates=len(summary.templates),
        n_records=len(records),
        scored_templates=tuple(sorted(baseline_per)),
    )

    candidates = generate_candidates(
        db.catalog, summary, max_candidates=max_candidates
    )
    chosen: list = []
    current_total, current_per = baseline_total, baseline_per
    remaining = list(candidates)
    while remaining and len(chosen) < max_builds:
        best = None
        for candidate in remaining:
            source = _unpartitioned_source(
                db.catalog, candidate.anchor, candidate.columns
            )
            if source is None:
                continue
            hyp = hypothetical_projection(
                source,
                candidate.name,
                candidate.columns,
                candidate.sort_keys,
                candidate.encodings,
                anchor=candidate.anchor,
            )
            view = WhatIfCatalog(
                db.catalog, adds=[h for _c, h in chosen] + [hyp]
            )
            with_total, with_per = evaluate_design(view, weighted, constants)
            # Compare over the keys both designs could score; adding a
            # candidate never removes a candidate, so current's keys are
            # a subset of with's.
            delta = sum(
                current_per[k][0] * (current_per[k][1] - with_per[k][1])
                for k in current_per
                if k in with_per
            )
            if best is None or delta > best[0]:
                best = (delta, candidate, hyp, with_total, with_per)
        if best is None:
            break
        delta, candidate, hyp, with_total, with_per = best
        if delta <= max(_MIN_RELATIVE_GAIN * baseline_total, 1e-9):
            break
        per_template = {
            k: current_per[k][0] * (current_per[k][1] - with_per[k][1])
            for k in current_per
            if k in with_per
            and current_per[k][1] - with_per[k][1] > 1e-12
        }
        plan.actions.append(
            AdvisorAction(
                kind="build",
                name=candidate.name,
                anchor=candidate.anchor,
                columns=candidate.columns,
                sort_keys=candidate.sort_keys,
                encodings=dict(candidate.encodings),
                partitions=candidate.partitions,
                predicted_delta_ms=delta,
                templates=per_template,
                reason=candidate.reason,
            )
        )
        chosen.append((candidate, hyp))
        remaining = [c for c in remaining if c.name != candidate.name]
        current_total, current_per = with_total, with_per
    plan.predicted_ms = current_total

    # Drops: advisor-built (anchored, non-base) projections that no logged
    # query resolved to and the final design does not route anything to.
    used = _recorded_projections(summary)
    used.update(entry[2] for entry in current_per.values())
    used.update(name for _c, h in chosen for name in (h.name,))
    for name in db.catalog.names():
        proj = db.catalog.get(name)
        if not proj.anchor or proj.anchor == proj.name:
            continue
        if name in used:
            continue
        plan.actions.append(
            AdvisorAction(
                kind="drop",
                name=name,
                anchor=proj.anchor,
                predicted_delta_ms=0.0,
                reason=(
                    "no logged query resolved to it and the advised "
                    "design routes nothing to it"
                ),
            )
        )
    return plan


def apply_plan(db, plan: AdvisorPlan) -> list[str]:
    """Execute *plan* against *db*; returns the action names applied.

    Builds read their rows from a covering stored projection of the
    anchor (pending inserts, updates, and deletes are merged first, so a
    new projection is born with the write set already folded in) and
    register through ``Catalog.create_projection``; an already-existing
    name is skipped, so applying a plan twice is a no-op. Existing
    projections are never rewritten — only added or (for drop actions)
    removed — which, with replay's projection pinning, keeps every
    previously logged result bit-identical.

    Every step here is crash-consistent: merges and creates go through the
    catalog's staged-commit protocol (build under ``tmp-*``, fsync, commit
    by manifest replace), and drops commit the manifest before deleting
    files. A crash mid-apply therefore leaves a database that is some
    prefix of the plan — each completed action fully durable, the
    interrupted one invisible — and re-running ``apply_plan`` finishes the
    remainder.
    """
    applied = []
    for action in plan.actions:
        if action.kind == "drop":
            if action.name in db.catalog:
                db.drop_projection(action.name)
                applied.append(f"drop:{action.name}")
            continue
        if action.name in db.catalog:
            continue
        anchor = action.anchor
        if db.pending(anchor):
            db.merge(anchor)
        source = _unpartitioned_source(db.catalog, anchor, action.columns)
        if source is None:
            raise CatalogError(
                f"no stored projection of {anchor!r} covers "
                f"{sorted(action.columns)}; cannot build {action.name!r}"
            )
        data = {c: source.read_column_values(c) for c in action.columns}
        schemas = {c: source.schema(c) for c in action.columns}
        db.catalog.create_projection(
            action.name,
            data,
            schemas,
            sort_keys=list(action.sort_keys),
            encodings={c: list(e) for c, e in action.encodings.items()},
            anchor=anchor,
            partitions=action.partitions,
        )
        applied.append(f"build:{action.name}")
    if applied:
        db.clear_cache()
    return applied
