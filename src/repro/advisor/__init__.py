"""Workload-adaptive physical design advisor.

Closes the loop the paper's cost model opens: the same Section-3 formulas
that pick a materialization strategy per query can rank whole physical
designs, once the workload is known. The query log (PR 7) records the
workload; this package distills it, enumerates candidate designs
(:mod:`~repro.advisor.candidates`), prices each against hypothetical
catalog entries with **no data movement** (:mod:`~repro.advisor.whatif`),
and emits a ranked, appliable plan (:mod:`~repro.advisor.plan`).

Entry points::

    plan = advise(db)                 # from the database's own query log
    plan = advise(db, records)        # from any captured record stream
    print(plan.render())
    apply_plan(db, plan)              # build/drop through the catalog

CLI: ``repro advise [--json] [--apply]``; model recalibration from the
same logs is ``repro calibrate --from-log`` (see
:mod:`repro.model.recalibrate`).
"""

from .candidates import CandidateDesign, generate_candidates
from .plan import AdvisorAction, AdvisorPlan, advise, apply_plan
from .whatif import (
    HypotheticalColumn,
    HypotheticalColumnFile,
    HypotheticalProjection,
    WhatIfCatalog,
    cheapest_plan_ms,
    evaluate_design,
    hypothetical_projection,
)

__all__ = [
    "AdvisorAction",
    "AdvisorPlan",
    "advise",
    "apply_plan",
    "CandidateDesign",
    "generate_candidates",
    "HypotheticalColumn",
    "HypotheticalColumnFile",
    "HypotheticalProjection",
    "WhatIfCatalog",
    "cheapest_plan_ms",
    "evaluate_design",
    "hypothetical_projection",
]
