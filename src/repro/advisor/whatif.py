"""Hypothetical catalog entries: what-if costing with no data movement.

The cost predictor never reads block payloads — every term it prices comes
from column *metadata*: block counts, value counts, run lengths, block
min/max descriptors, and the write-time histogram. That makes true what-if
costing cheap: fabricate the metadata a projection **would** have if it
were built (same rows, different sort order / encodings), hand it to the
unchanged :func:`repro.model.predictor.predict_select`, and the model
prices the hypothetical design exactly as it would the real one.

Three duck-typed stand-ins mirror the read surface the predictor and
:mod:`repro.planner.projection_choice` actually touch:

* :class:`HypotheticalColumnFile` — the :class:`~repro.storage.column_file.
  ColumnFile` metadata surface (``n_values``/``n_blocks``/``descriptors``/
  ``total_runs``/``avg_run_length``/``histogram``/``encoding``). The
  histogram is *delegated* from the real source column — a value
  distribution is sort-order-invariant — while descriptors and run counts
  are synthesized for the hypothetical sort order.
* :class:`HypotheticalColumn` — ``file(encoding)`` with the same
  default-order walk and the same :class:`~repro.errors.CatalogError` on a
  missing encoding as :class:`~repro.storage.projection.ProjectionColumn`,
  so encoding overrides disqualify hypothetical candidates exactly like
  real ones.
* :class:`HypotheticalProjection` — ``column``/``physical_column``/
  ``column_names``/``n_rows``/``sort_keys``/``is_partitioned``.

:class:`WhatIfCatalog` overlays additions and drops on a real catalog and
exposes the one method projection routing needs (``candidates``), so
:func:`cheapest_plan_ms` can re-run the router's own
candidate × strategy minimization against any hypothetical design.

Synthesis assumptions (documented approximations):

* a column sorted first runs one run per distinct value
  (``run_length = n / n_distinct``) and its block descriptors carry
  quantile value ranges from the histogram, so the model sees the block
  skipping and fragment locality a sorted build would earn;
* non-sort-key columns get full-range descriptors (no skipping) and run
  length 1 — pessimistic for correlated columns, safe everywhere;
* per-encoding block counts come from a rough bytes-per-value model
  (64 KB blocks), adequate because the model's I/O term only needs block
  *counts*, not exact layouts;
* partition advice is scored through the sorted-descriptor read fraction
  (a zone map prunes the same blocks the descriptors already skip), so
  partitioned candidates reuse the unpartitioned hypothetical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import CatalogError, UnsupportedOperationError
from ..storage.block import BlockDescriptor
from ..storage.encoding import encoding_by_name
from ..storage.projection import ProjectionColumn

_BLOCK_BYTES = 64 * 1024
#: Rough encoded bytes per RLE run (value + start + length).
_RUN_BYTES = 24

#: Sentinel standing in for a clustered index on a hypothetical primary
#: sort key; the predictor only tests ``index is not None``.
_HYPOTHETICAL_INDEX = object()


@dataclass
class HypotheticalColumnFile:
    """Metadata-only stand-in for one encoding of one column."""

    column: str
    encoding: object
    n_values: int
    descriptors: list
    total_runs: int
    histogram: object | None = None

    @property
    def n_blocks(self) -> int:
        return len(self.descriptors)

    @property
    def avg_run_length(self) -> float:
        if self.total_runs == 0:
            return 1.0
        return self.n_values / self.total_runs


@dataclass
class HypotheticalColumn:
    """``ProjectionColumn`` read surface over hypothetical files."""

    name: str
    files: dict[str, HypotheticalColumnFile]
    #: True for the primary sort key: a real build would get a clustered
    #: index there (and only there).
    has_index: bool = False

    @property
    def index(self):
        return _HYPOTHETICAL_INDEX if self.has_index else None

    @property
    def encodings(self) -> list[str]:
        return sorted(self.files)

    def file(self, encoding: str | None = None) -> HypotheticalColumnFile:
        if encoding is None:
            for preferred in ProjectionColumn.DEFAULT_ENCODING_ORDER:
                if preferred in self.files:
                    encoding = preferred
                    break
            else:
                encoding = next(iter(sorted(self.files)))
        if encoding not in self.files:
            raise CatalogError(
                f"column {self.name!r} has no {encoding!r} encoding "
                f"(available: {self.encodings})"
            )
        return self.files[encoding]


@dataclass
class HypotheticalProjection:
    """``Projection`` read surface for a design that was never built."""

    name: str
    anchor: str
    n_rows: int
    sort_keys: list[str]
    columns: dict[str, HypotheticalColumn]

    @property
    def is_partitioned(self) -> bool:
        return False

    @property
    def column_names(self) -> list[str]:
        return list(self.columns)

    def column(self, name: str) -> HypotheticalColumn:
        try:
            return self.columns[name]
        except KeyError:
            raise CatalogError(
                f"hypothetical projection {self.name!r} has no column "
                f"{name!r}"
            ) from None

    # The predictor reaches columns via ``column``; the optimizer's
    # applicability check via ``physical_column``. Same thing here.
    physical_column = column


def _mass_segments(histogram) -> list[tuple[float, float, float]]:
    """(lo, hi, mass) segments covering the histogram's value mass."""
    segments = [
        (float(v), float(v), float(c)) for v, c in histogram.common
    ]
    for i, count in enumerate(histogram.counts):
        segments.append(
            (
                float(histogram.edges[i]),
                float(histogram.edges[i + 1]),
                float(count),
            )
        )
    segments.sort(key=lambda s: (s[0], s[1]))
    return segments


def _sorted_block_ranges(histogram, n_blocks: int):
    """Per-block (min, max) value ranges of a sorted column, equal mass.

    Interpolates quantile cut points from the histogram: block *i* of a
    sorted column holds the values between mass fractions ``i/n`` and
    ``(i+1)/n``. This is what gives a hypothetical sort its predicted
    block-skipping benefit.
    """
    segments = _mass_segments(histogram)
    if not segments:
        return [(0.0, 0.0)] * n_blocks
    lo = min(s[0] for s in segments)
    hi = max(s[1] for s in segments)
    total = sum(s[2] for s in segments)
    if total <= 0 or n_blocks <= 1:
        return [(lo, hi)] * n_blocks
    targets = [total * i / n_blocks for i in range(1, n_blocks)]
    cuts: list[float] = []
    acc = 0.0
    ti = 0
    for s_lo, s_hi, mass in segments:
        while ti < len(targets) and mass > 0 and acc + mass >= targets[ti]:
            frac = (targets[ti] - acc) / mass
            cuts.append(s_lo + (s_hi - s_lo) * frac)
            ti += 1
        acc += mass
    while len(cuts) < n_blocks - 1:
        cuts.append(hi)
    bounds = [lo, *cuts, hi]
    return [(bounds[i], bounds[i + 1]) for i in range(n_blocks)]


def _estimated_blocks(
    encoding_name: str,
    n_values: int,
    n_distinct: int,
    value_nbytes: int,
    run_length: float,
) -> int:
    """Rough 64 KB block count for one encoding of a column."""
    if n_values == 0:
        return 1
    if encoding_name == "rle":
        runs = max(1, math.ceil(n_values / max(run_length, 1.0)))
        payload = runs * _RUN_BYTES
    elif encoding_name == "dictionary":
        code_bytes = 1 if n_distinct <= 256 else (
            2 if n_distinct <= 65536 else 4
        )
        payload = n_values * code_bytes + n_distinct * value_nbytes
    elif encoding_name == "bitvector":
        payload = max(n_distinct, 1) * (n_values // 8 + 1)
    else:  # uncompressed, for
        payload = n_values * max(value_nbytes, 1)
    return max(1, math.ceil(payload / _BLOCK_BYTES))


def _hypothetical_file(
    column: str,
    source_file,
    value_nbytes: int,
    encoding_name: str,
    sorted_as_key: bool,
) -> HypotheticalColumnFile:
    """Synthesize one encoding's metadata from the real column's stats."""
    encoding = encoding_by_name(encoding_name)
    n = source_file.n_values
    histogram = source_file.histogram
    distinct = (
        histogram.n_distinct if histogram is not None and histogram.n_values
        else max(n, 1)
    )
    if sorted_as_key:
        run_length = n / max(distinct, 1)
    else:
        run_length = 1.0
    n_blocks = _estimated_blocks(
        encoding_name, n, distinct, value_nbytes, run_length
    )
    if sorted_as_key and histogram is not None and histogram.n_values:
        ranges = _sorted_block_ranges(histogram, n_blocks)
    else:
        lo = min(
            (d.min_value for d in source_file.descriptors), default=0.0
        )
        hi = max(
            (d.max_value for d in source_file.descriptors), default=0.0
        )
        ranges = [(lo, hi)] * n_blocks
    descriptors = []
    per_block = max(1, math.ceil(n / n_blocks)) if n else 0
    pos = 0
    for i, (mn, mx) in enumerate(ranges):
        count = min(per_block, n - pos) if n else 0
        descriptors.append(
            BlockDescriptor(
                index=i,
                offset=0,
                nbytes=0,
                start_pos=pos,
                n_values=max(count, 0),
                min_value=mn,
                max_value=mx,
                crc32=None,
            )
        )
        pos += count
    if encoding.supports_runs:
        total_runs = max(1, math.ceil(n / max(run_length, 1.0))) if n else 0
    else:
        total_runs = n
    return HypotheticalColumnFile(
        column=column,
        encoding=encoding,
        n_values=n,
        descriptors=descriptors,
        total_runs=total_runs,
        histogram=histogram,
    )


def hypothetical_projection(
    source,
    name: str,
    columns,
    sort_keys,
    encodings: dict,
    anchor: str | None = None,
) -> HypotheticalProjection:
    """Fabricate the metadata *source*'s rows would have under a new design.

    *source* is a real, unpartitioned projection covering *columns*; its
    per-column histograms and value counts parameterize the synthesis.
    *encodings* maps each column to the encoding names the design would
    store (exactly what an :func:`~repro.advisor.plan.apply_plan` build
    materializes, so what-if scores describe the projection apply creates).
    """
    primary = sort_keys[0] if sort_keys else None
    cols: dict[str, HypotheticalColumn] = {}
    for col in columns:
        source_file = source.physical_column(col).file()
        value_nbytes = source.schema(col).ctype.numpy_dtype.itemsize
        files = {
            enc: _hypothetical_file(
                col, source_file, value_nbytes, enc, col == primary
            )
            for enc in encodings.get(col, ("uncompressed",))
        }
        cols[col] = HypotheticalColumn(
            name=col, files=files, has_index=(col == primary)
        )
    return HypotheticalProjection(
        name=name,
        anchor=anchor or source.anchor or source.name,
        n_rows=source.n_rows,
        sort_keys=list(sort_keys),
        columns=cols,
    )


class WhatIfCatalog:
    """A catalog view: real projections, plus adds, minus drops.

    Duck-types the one lookup projection routing performs —
    ``candidates(name)`` — preserving the real catalog's candidate order
    (ties keep resolving to the incumbent) and appending hypotheticals
    whose name or anchor matches.
    """

    def __init__(self, catalog, adds=(), drops=()):
        self._catalog = catalog
        self._adds = {p.name: p for p in adds}
        self._drops = set(drops)

    def candidates(self, name: str) -> list:
        out = [
            p
            for p in self._catalog.candidates(name)
            if p.name not in self._drops
        ]
        for p in self._adds.values():
            if p.name == name or p.anchor == name:
                out.append(p)
        return out

    def has(self, name: str) -> bool:
        return bool(self.candidates(name))

    def get(self, name: str):
        if name in self._adds:
            return self._adds[name]
        if name in self._drops:
            raise CatalogError(f"unknown projection {name!r}")
        return self._catalog.get(name)

    def __contains__(self, name: str) -> bool:
        if name in self._adds:
            return True
        if name in self._drops:
            return False
        return name in self._catalog


def cheapest_plan_ms(catalog_like, query, constants):
    """The router's own minimization, returning its score.

    Runs :func:`resolve_projection`'s candidate × strategy loop against
    any catalog-like view and returns ``(best_ms, projection_name,
    strategy_value)``. Raises :class:`CatalogError` when nothing covers
    the query or nothing costs cleanly.
    """
    from ..model.predictor import predict_select
    from ..planner.strategies import Strategy

    candidates = catalog_like.candidates(query.projection)
    if not candidates:
        raise CatalogError(
            f"unknown projection or table {query.projection!r}"
        )
    needed = set(query.all_columns)
    covering = [p for p in candidates if needed <= set(p.column_names)]
    if not covering:
        raise CatalogError(
            f"no projection of {query.projection!r} covers columns "
            f"{sorted(needed)}"
        )
    best = None
    for projection in covering:
        for strategy in Strategy:
            try:
                ms = predict_select(
                    projection, query, strategy, constants=constants
                ).total_ms
            except (CatalogError, UnsupportedOperationError):
                continue
            if best is None or ms < best[0]:
                best = (ms, projection.name, strategy.value)
    if best is None:
        raise CatalogError(
            f"no candidate of {query.projection!r} costs cleanly for "
            "this query"
        )
    return best


def evaluate_design(catalog_like, weighted_queries, constants):
    """Score a design against a weighted template set.

    *weighted_queries* is ``[(key, weight, query), ...]``. Returns
    ``(total_ms, per_key)`` where ``per_key`` maps each scoreable key to
    ``(weight, best_ms, projection_name, strategy)`` and ``total_ms`` is
    the weight-scaled sum over those keys. Templates the design cannot
    cost (nothing covers them) are omitted from ``per_key`` — callers
    compare designs over the key intersection.
    """
    total = 0.0
    per_key = {}
    for key, weight, query in weighted_queries:
        try:
            ms, proj_name, strategy = cheapest_plan_ms(
                catalog_like, query, constants
            )
        except (CatalogError, UnsupportedOperationError):
            continue
        per_key[key] = (weight, ms, proj_name, strategy)
        total += weight * ms
    return total, per_key
