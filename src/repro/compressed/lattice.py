"""The representation lattice and its morph operators.

Compressed execution views every block as sitting at a point in a small
lattice of physical representations:

::

    RUNS ────┐
    CODES ───┼──> VALUES
    DELTAS ──┘

``VALUES`` (a decoded numpy array) is the bottom everything can morph down
to; ``RUNS`` (RLE run table), ``CODES`` (dictionary distinct + code arrays)
and ``DELTAS`` (FOR reference + packed offsets) are the encoded points the
per-encoding kernels operate at. There is deliberately no lateral edge:
re-encoding an intermediate is never worth it on this substrate, so the only
move is *down* (a morph), and the per-operator decision is simply "stay at
the encoded point or morph to VALUES" — costed by :mod:`repro.model.morph`.

The explicit :data:`MORPHS` operators are the lattice's edges. Operators
don't call them directly (each kernel falls back to the decoded path, which
the decoded-block cache serves); they exist so the lattice is testable and
documented as data: every morph must reproduce ``Encoding.decode`` exactly.
"""

from __future__ import annotations

from enum import Enum

import numpy as np


class Representation(str, Enum):
    """A point in the compressed-execution lattice."""

    RUNS = "runs"
    CODES = "codes"
    DELTAS = "deltas"
    VALUES = "values"


#: The encoded lattice point of each encoding that has an operator kernel.
#: Encodings absent here (uncompressed, bit-vector) only exist at VALUES —
#: uncompressed *is* VALUES, and bit-vector answers scans in position space
#: already, so neither has anything to stay compressed in.
ENCODING_REPRESENTATIONS: dict[str, Representation] = {
    "rle": Representation.RUNS,
    "dictionary": Representation.CODES,
    "for": Representation.DELTAS,
}


def runs_to_values(
    values: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """RUNS -> VALUES: expand each run value over its length."""
    return np.repeat(values, lengths)


def codes_to_values(
    distinct: np.ndarray, codes: np.ndarray, dtype: np.dtype
) -> np.ndarray:
    """CODES -> VALUES: index the distinct array by the code array."""
    return distinct.astype(dtype)[codes]


def deltas_to_values(
    reference: int, offsets: np.ndarray, dtype: np.dtype
) -> np.ndarray:
    """DELTAS -> VALUES: widen the offsets and add the reference back."""
    return (offsets.astype(np.int64) + reference).astype(dtype)


#: Edges of the lattice: (source representation) -> morph operator.
MORPHS = {
    Representation.RUNS: runs_to_values,
    Representation.CODES: codes_to_values,
    Representation.DELTAS: deltas_to_values,
}
