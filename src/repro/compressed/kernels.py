"""Per-encoding predicate kernels operating on compressed block data.

:func:`scan_block_compressed` is the DS1 dispatch point: given one block's
raw payload it evaluates the predicate in the block's *encoded* domain —

* **RLE** — compare once per run against the run-table values and emit the
  surviving ``(start, stop)`` pairs as a :class:`~repro.positions.RunPositions`
  set, never expanding a run;
* **dictionary** — translate the predicate into the code domain once (one
  compare per distinct value), then index the qualifying mask by the narrow
  code array;
* **FOR** — rebase the predicate constant by the block reference and compare
  the packed offsets directly, without widening to int64.

Each kernel first consults :mod:`repro.model.morph`: when the modelled cost
of staying compressed exceeds the decoded path (an RLE block with run-length
~1, a FOR predicate whose constant cannot rebase exactly), the kernel
returns ``None`` and the caller *morphs* — falls through to the decoded scan
path and counts a ``morphs`` stat. A successful kernel counts
``compressed_scans``.

The dispatch is a pure function of the block payload, the predicate, and the
model constants — never of cache state or scheduler parallelism — so the
choice is bit-identical across serial/parallel and cold/warm executions.

Row-identity contract: every kernel must select exactly the positions the
decoded reference path (`from_mask(start, predicate.mask(decode(...)))`)
selects; the differential harness gates this across all four strategies with
compressed execution on and off.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from ..model.constants import PAPER_CONSTANTS
from ..model.morph import (
    dictionary_scan_decision,
    for_scan_decision,
    rle_scan_decision,
)
from ..positions import PositionSet, RangePositions, RunPositions, from_mask

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..operators.base import ExecutionContext
    from ..storage.block import BlockDescriptor
    from ..storage.column_file import ColumnFile

#: Encodings with an operator kernel; DS1 counts a morph only for these
#: (an uncompressed or bit-vector block has nothing to stay compressed in).
KERNEL_ENCODINGS = frozenset({"rle", "dictionary", "for"})


def has_kernel(encoding_name: str) -> bool:
    """True when compressed execution has a predicate kernel for *encoding_name*."""
    return encoding_name in KERNEL_ENCODINGS


def scan_block_compressed(
    ctx: "ExecutionContext",
    column_file: "ColumnFile",
    desc: "BlockDescriptor",
    payload: bytes,
    predicate,
) -> PositionSet | None:
    """Evaluate *predicate* over one block in its encoded domain.

    Returns the matching positions, or ``None`` when the block should morph
    to the decoded path (no kernel, or the model says decoding is cheaper).
    """
    name = column_file.encoding.name
    if name == "rle":
        return _scan_rle(ctx, column_file, desc, payload, predicate)
    if name == "dictionary":
        return _scan_dictionary(ctx, column_file, desc, payload, predicate)
    if name == "for":
        return _scan_for(ctx, column_file, desc, payload, predicate)
    return None


def _constants(ctx):
    return ctx.constants if ctx.constants is not None else PAPER_CONSTANTS


def _scan_rle(ctx, column_file, desc, payload, predicate) -> PositionSet | None:
    values, starts, lengths = ctx.run_table(column_file, desc, payload)
    if not rle_scan_decision(desc.n_values, len(values), _constants(ctx)).stay:
        return None
    keep = predicate.mask(values)
    return RunPositions.from_runs(starts[keep], starts[keep] + lengths[keep])


def _scan_dictionary(
    ctx, column_file, desc, payload, predicate
) -> PositionSet | None:
    distinct, codes = ctx.code_table(column_file, desc, payload)
    decision = dictionary_scan_decision(
        desc.n_values, len(distinct), codes.itemsize, _constants(ctx)
    )
    if not decision.stay:  # pragma: no cover - codes are always narrower
        return None
    qualifying = predicate.mask(distinct.astype(column_file.dtype))
    nz = np.flatnonzero(qualifying)
    if nz.size == 0:
        return RangePositions.empty()
    if nz.size == len(distinct):
        return RangePositions(desc.start_pos, desc.end_pos)
    if int(nz[-1]) - int(nz[0]) + 1 == nz.size:
        # The distinct array is sorted, so any range-style predicate
        # qualifies one contiguous code interval: compare the narrow code
        # array against the interval bounds directly — 1-4 bytes of memory
        # traffic per value and no gather.
        lo, hi = int(nz[0]), int(nz[-1])
        if lo == 0:
            mask = codes <= hi
        elif hi == len(distinct) - 1:
            mask = codes >= lo
        else:
            mask = (codes >= lo) & (codes <= hi)
        return from_mask(desc.start_pos, mask)
    return from_mask(desc.start_pos, qualifying[codes])


def _scan_for(ctx, column_file, desc, payload, predicate) -> PositionSet | None:
    span = ctx.for_span(column_file, desc, payload)
    kernel = _offset_space_predicate(predicate, span.reference)
    decision = for_scan_decision(
        desc.n_values, span.width, kernel is not None, _constants(ctx)
    )
    if not decision.stay:
        return None
    return from_mask(desc.start_pos, kernel(span.offsets))


def _exact_int(value) -> int | None:
    """*value* as an exact int, or None when rebasing it would round."""
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return None


def _offset_space_predicate(
    predicate, reference: int
) -> Callable[[np.ndarray], np.ndarray] | None:
    """Translate *predicate* into the FOR block's offset space.

    Returns a mask function over the packed (unsigned, narrow) offsets, or
    None when the constant is not an exact integer — rebasing a fractional
    constant by the reference could round differently from the decoded
    compare, so those blocks morph instead.
    """
    from ..predicates import _OPS, ColumnConjunction, InPredicate, Predicate

    if isinstance(predicate, ColumnConjunction):
        parts = [
            _offset_space_predicate(p, reference) for p in predicate.predicates
        ]
        if any(p is None for p in parts):
            return None

        def conjunction(offsets: np.ndarray) -> np.ndarray:
            mask = parts[0](offsets)
            for part in parts[1:]:
                mask &= part(offsets)
            return mask

        return conjunction
    if isinstance(predicate, InPredicate):
        rebased = [_exact_int(v) for v in predicate.in_values]
        if any(v is None for v in rebased):
            return None
        targets = np.array([v - reference for v in rebased], dtype=np.int64)
        return lambda offsets: np.isin(offsets, targets)
    if isinstance(predicate, Predicate):
        value = _exact_int(predicate.value)
        if value is None:
            return None
        op = _OPS[predicate.op]
        shifted = value - reference
        return lambda offsets: op(offsets, shifted)
    return None


def dictionary_group_codes(
    ctx: "ExecutionContext",
    column_file: "ColumnFile",
    positions: np.ndarray,
    minicolumn,
) -> tuple[np.ndarray, np.ndarray]:
    """Map each position to its dictionary code: (code values, code id per row).

    The aggregation analogue of the RLE run path: the group column stays in
    the code domain, the aggregator reduces rows to per-block code
    histograms (dense bincount over code ids), and only the distinct arrays
    — a handful of values per block — are ever widened. Returns per-block
    dictionaries concatenated with globally offset code ids, exactly the
    ``(run_values, run_ids)`` contract of ``AggregateLM.execute_runs``.
    """
    stats = ctx.stats
    value_parts: list[np.ndarray] = []
    id_parts: list[np.ndarray] = []
    cursor = 0
    code_base = 0  # dictionary entries appended so far across loaded blocks
    n = len(positions)
    for desc in column_file.descriptors:
        if cursor >= n:
            break
        hi = int(np.searchsorted(positions, desc.end_pos, side="left"))
        if hi <= cursor:
            stats.blocks_skipped += 1
            continue
        if minicolumn is not None and minicolumn.has_block(desc.index):
            payload = minicolumn.payload(desc.index)
            stats.block_iterations += 1
        else:
            payload = ctx.read_block(column_file, desc.index)
        distinct, codes = ctx.code_table(column_file, desc, payload)
        chunk = positions[cursor:hi]
        local = codes[chunk - desc.start_pos].astype(np.int64)
        value_parts.append(distinct.astype(column_file.dtype))
        id_parts.append(local + code_base)
        code_base += len(distinct)
        cursor = hi
    if not value_parts:
        return (
            np.empty(0, dtype=column_file.dtype),
            np.empty(0, dtype=np.int64),
        )
    return np.concatenate(value_parts), np.concatenate(id_parts)
