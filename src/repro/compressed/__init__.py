"""Compressed execution: operator kernels over encoded block data.

The layer ISSUE/ROADMAP call "operating directly on compressed data, end to
end": predicate kernels per encoding (:mod:`~repro.compressed.kernels`), a
representation lattice with explicit morph operators
(:mod:`~repro.compressed.lattice`), and the stay-vs-morph cost rules living
with the rest of the analytical model in :mod:`repro.model.morph`.

``Database(compressed_execution=True)`` (the default) routes DS1 scans
through :func:`scan_block_compressed` and the LM aggregation tail through
run tables / code histograms; results are bit-identical with the layer off,
only the physical work changes — gated by the compressed differential axis.
"""

from .kernels import (
    KERNEL_ENCODINGS,
    dictionary_group_codes,
    has_kernel,
    scan_block_compressed,
)
from .lattice import (
    ENCODING_REPRESENTATIONS,
    MORPHS,
    Representation,
    codes_to_values,
    deltas_to_values,
    runs_to_values,
)

__all__ = [
    "KERNEL_ENCODINGS",
    "has_kernel",
    "scan_block_compressed",
    "dictionary_group_codes",
    "Representation",
    "ENCODING_REPRESENTATIONS",
    "MORPHS",
    "runs_to_values",
    "codes_to_values",
    "deltas_to_values",
]
