"""Self-contained figure reproduction (the CLI's ``repro reproduce``).

Regenerates any of the paper's evaluation figures from a fresh TPC-H-style
database, printing the same series the paper plots. The pytest benchmark
suite (``benchmarks/``) is the rigorous harness; this module makes the
installed package able to reproduce the figures on its own::

    repro reproduce 11a --scale 0.05
    repro reproduce 12b
    repro reproduce 13
"""

from __future__ import annotations

import tempfile

from .engine import Database
from .errors import ReproError, UnsupportedOperationError
from .operators.aggregate import AggSpec
from .planner import JoinQuery, RightTableStrategy, SelectQuery, Strategy
from .predicates import Predicate
from .tpch import SHIPDATE_MAX, SHIPDATE_MIN, load_tpch

SWEEP = (0.02, 0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9, 0.98)

FIGURES = {
    "11a": ("selection", "uncompressed"),
    "11b": ("selection", "rle"),
    "11c": ("selection", "bitvector"),
    "12a": ("aggregation", "uncompressed"),
    "12b": ("aggregation", "rle"),
    "12c": ("aggregation", "bitvector"),
    "13": ("join", None),
}


def shipdate_constant(selectivity: float) -> int:
    """The shipdate constant X giving roughly the requested selectivity."""
    return int(
        SHIPDATE_MIN + selectivity * (SHIPDATE_MAX + 1 - SHIPDATE_MIN)
    )


def _query(kind: str, selectivity: float, encoding: str) -> SelectQuery:
    predicates = (
        Predicate("shipdate", "<", shipdate_constant(selectivity)),
        Predicate("linenum", "<", 7),
    )
    if kind == "aggregation":
        return SelectQuery(
            projection="lineitem",
            select=("shipdate", "sum(linenum)"),
            predicates=predicates,
            group_by="shipdate",
            aggregates=(AggSpec("sum", "linenum"),),
            encodings=(("linenum", encoding),),
        )
    return SelectQuery(
        projection="lineitem",
        select=("shipdate", "linenum"),
        predicates=predicates,
        encodings=(("linenum", encoding),),
    )


def _join_query(db: Database, selectivity: float) -> JoinQuery:
    n_customer = db.projection("customer").n_rows
    return JoinQuery(
        left="orders",
        right="customer",
        left_key="custkey",
        right_key="custkey",
        left_select=("shipdate",),
        right_select=("nationcode",),
        left_predicates=(
            Predicate(
                "custkey", "<", max(int(selectivity * n_customer) + 1, 1)
            ),
        ),
    )


def reproduce_figure(
    figure: str, scale: float = 0.05, seed: int = 42, out=print
) -> dict:
    """Run one figure's sweep; returns {series: [(sel, wall_ms, sim_ms)]}.

    Args:
        figure: one of ``11a 11b 11c 12a 12b 12c 13``.
        scale: TPC-H scale factor (0.05 = 300 K lineitem rows).
        seed: generator seed.
        out: line sink for the printed table (``print`` by default).
    """
    key = figure.lower().lstrip("fig").lstrip("ure").strip()
    if key not in FIGURES:
        raise ReproError(
            f"unknown figure {figure!r}; choose from {sorted(FIGURES)}"
        )
    kind, encoding = FIGURES[key]
    db = Database(tempfile.mkdtemp(prefix=f"repro_fig{key}_"))
    out(f"loading TPC-H-style data at scale {scale}...")
    load_tpch(db.catalog, scale=scale, seed=seed)

    if kind == "join":
        series_keys = [s for s in RightTableStrategy]
        run = lambda sel, s: db.query(_join_query(db, sel), strategy=s, cold=True)
    else:
        series_keys = list(Strategy)
        run = lambda sel, s: db.query(
            _query(kind, sel, encoding), strategy=s, cold=True
        )

    table: dict[str, list] = {}
    for strategy in series_keys:
        series = []
        for sel in SWEEP:
            try:
                result = run(sel, strategy)
            except UnsupportedOperationError:
                series.append((sel, None, None))
                continue
            series.append((sel, result.wall_ms, result.simulated_ms))
        table[strategy.value] = series

    title = (
        f"Figure {key}: {kind}"
        + (f", LINENUM {encoding}" if encoding else "")
        + " (model-replay ms)"
    )
    out(title)
    names = list(table)
    out(f"{'sel':>6} " + " ".join(f"{n:>14}" for n in names))
    for i, sel in enumerate(SWEEP):
        cells = []
        for name in names:
            sim = table[name][i][2]
            cells.append(f"{sim:>14.1f}" if sim is not None else f"{'n/a':>14}")
        out(f"{sel:>6.2f} " + " ".join(cells))
    return table
