"""SARGable single-column predicates.

Every C-Store data source accepts simple search arguments (value comparisons
against a constant) and applies them during the scan. Predicates here are
vectorised: :meth:`Predicate.mask` evaluates a whole block of values at once,
and :meth:`Predicate.matches_value` / :meth:`Predicate.overlaps_range` let
RLE-aware operators and block-skipping logic reason about value ranges without
decompressing.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, ClassVar

import numpy as np

from .errors import PlanError

_OPS: dict[str, Callable] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
}


@dataclass(frozen=True)
class Predicate:
    """A comparison of one column against a constant, e.g. ``shipdate < 9000``."""

    column: str
    op: str
    value: float

    _CANONICAL: ClassVar[dict[str, str]] = {"==": "=", "<>": "!="}

    def __post_init__(self):
        if self.op not in _OPS:
            raise PlanError(f"unsupported predicate operator {self.op!r}")
        canonical = self._CANONICAL.get(self.op)
        if canonical:
            object.__setattr__(self, "op", canonical)

    def mask(self, values: np.ndarray) -> np.ndarray:
        """Evaluate against a vector of values; returns a boolean mask."""
        return _OPS[self.op](values, self.value)

    def matches_value(self, value) -> bool:
        """Evaluate against a single (e.g. run-length-encoded) value."""
        return bool(_OPS[self.op](value, self.value))

    def overlaps_range(self, lo, hi) -> bool:
        """Could any value in the closed interval [lo, hi] satisfy the predicate?

        Used for block skipping: if a block's min/max range cannot satisfy the
        predicate, the block need not be read at all.
        """
        if self.op == "<":
            return lo < self.value
        if self.op == "<=":
            return lo <= self.value
        if self.op == ">":
            return hi > self.value
        if self.op == ">=":
            return hi >= self.value
        if self.op == "=":
            return lo <= self.value <= hi
        # "!=": only an all-equal block of exactly `value` can be skipped.
        return not (lo == hi == self.value)

    def contains_range(self, lo, hi) -> bool:
        """Do *all* values in the closed interval [lo, hi] satisfy the predicate?

        Lets run-aware code accept a whole run/block without testing values.
        """
        if self.op == "<":
            return hi < self.value
        if self.op == "<=":
            return hi <= self.value
        if self.op == ">":
            return lo > self.value
        if self.op == ">=":
            return lo >= self.value
        if self.op == "=":
            return lo == hi == self.value
        return hi < self.value or lo > self.value

    def __str__(self) -> str:
        return f"{self.column} {self.op} {self.value}"


@dataclass(frozen=True)
class InPredicate:
    """Membership test against a small literal set, e.g. ``linenum IN (1,3,5)``.

    Duck-compatible with :class:`Predicate`. On bit-vector encoded columns
    this evaluates by OR-ing the matching bit-strings (the paper's bitmap
    index case: "the positions matching a predicate can be derived by ORing
    together the appropriate bitmaps").
    """

    column: str
    in_values: tuple[float, ...]

    def __post_init__(self):
        if not self.in_values:
            raise PlanError("IN predicate needs at least one value")
        object.__setattr__(
            self, "in_values", tuple(sorted(set(self.in_values)))
        )

    def mask(self, values: np.ndarray) -> np.ndarray:
        return np.isin(values, np.asarray(self.in_values))

    def matches_value(self, value) -> bool:
        return value in self.in_values

    def overlaps_range(self, lo, hi) -> bool:
        return any(lo <= v <= hi for v in self.in_values)

    def contains_range(self, lo, hi) -> bool:
        if lo == hi:
            return lo in self.in_values
        # Every integer in [lo, hi] must be listed.
        members = set(self.in_values)
        return all(v in members for v in range(int(lo), int(hi) + 1))

    def __str__(self) -> str:
        return f"{self.column} IN {self.in_values}"


@dataclass(frozen=True)
class ColumnConjunction:
    """AND of several predicates over the same column.

    Duck-compatible with :class:`Predicate` everywhere scans need it, so a
    BETWEEN-style pair of comparisons flows through DS operators as one
    SARGable unit.
    """

    column: str
    predicates: tuple[Predicate, ...]

    def __post_init__(self):
        if not self.predicates:
            raise PlanError("empty column conjunction")
        if any(p.column != self.column for p in self.predicates):
            raise PlanError("conjunction mixes columns")

    def mask(self, values: np.ndarray) -> np.ndarray:
        return conjunction_mask(list(self.predicates), values)

    def matches_value(self, value) -> bool:
        return all(p.matches_value(value) for p in self.predicates)

    def overlaps_range(self, lo, hi) -> bool:
        return all(p.overlaps_range(lo, hi) for p in self.predicates)

    def contains_range(self, lo, hi) -> bool:
        return all(p.contains_range(lo, hi) for p in self.predicates)

    def __str__(self) -> str:
        return " AND ".join(str(p) for p in self.predicates)


def combine_column_predicates(predicates: list[Predicate]):
    """Collapse same-column predicates into one scan-ready predicate."""
    if len(predicates) == 1:
        return predicates[0]
    return ColumnConjunction(predicates[0].column, tuple(predicates))


def conjunction_mask(predicates: list[Predicate], values: np.ndarray) -> np.ndarray:
    """AND together the masks of several predicates over the same value vector."""
    if not predicates:
        return np.ones(len(values), dtype=bool)
    mask = predicates[0].mask(values)
    for pred in predicates[1:]:
        mask &= pred.mask(values)
    return mask
