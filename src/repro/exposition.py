"""Prometheus text-format exposition of the metrics registry.

:func:`render_prometheus` turns a :meth:`repro.metrics.MetricsRegistry.export`
dump (plus optional serving-layer stats) into the Prometheus text exposition
format, version 0.0.4 — pure string assembly, no client library.

Conformance rules this module enforces (and the exposition tests lint):

* metric names match ``[a-zA-Z_:][a-zA-Z0-9_:]*``, label names match
  ``[a-zA-Z_][a-zA-Z0-9_]*`` (anything else is sanitized to ``_``);
* every family is introduced by exactly one ``# HELP`` and one ``# TYPE``
  line before its samples;
* label values escape backslash, double-quote and newline;
* counters end in ``_total``; histograms emit cumulative
  ``_bucket{le="..."}`` series closed by ``le="+Inf"`` plus ``_sum`` and
  ``_count``;
* output ordering is deterministic: families sorted by name, samples
  sorted by label value — so two renders of the same state are
  byte-identical (scrape diffing, golden tests).

Dotted registry names map onto labelled families: a three-part name
``<base>.<dimension>.<value>`` (e.g. ``queries.strategy.em-parallel`` or
``query_wall_ms.encoding.rle``) becomes one family per (base, dimension)
pair — ``repro_queries_by_strategy_total{strategy="em-parallel"}`` — so the
per-strategy/per-encoding breakdowns the registry keeps as separate
instruments scrape as proper label dimensions. Collector dicts (buffer
pool, decoded cache, admission queue, query log, ...) flatten to gauges,
with the admission queue's ``per_class`` map becoming a ``priority`` label.
"""

from __future__ import annotations

import re

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_SANITIZE_LABEL = re.compile(r"[^a-zA-Z0-9_]")

#: HELP text per family; families not listed get a generic line.
_HELP = {
    "repro_queries_total": "Queries finished (any outcome) by the engine.",
    "repro_queries_slow_total":
        "Queries recorded in the slow-query ring buffer.",
    "repro_queries_by_strategy_total":
        "Queries finished, by resolved materialization strategy.",
    "repro_queries_by_encoding_total":
        "Queries finished, by per-column encoding override.",
    "repro_query_wall_ms": "Query wall-clock latency in milliseconds.",
    "repro_query_wall_ms_by_strategy":
        "Query wall-clock latency by materialization strategy.",
    "repro_query_wall_ms_by_encoding":
        "Query wall-clock latency by encoding override.",
    "repro_query_sim_ms_by_strategy":
        "Analytical-model simulated query time by strategy.",
    "repro_slow_queries_resident":
        "Entries currently held in the slow-query ring buffer.",
    "repro_serving_queue_depth":
        "Queries waiting in the admission queue, by priority class.",
    "repro_serving_active_queries":
        "Queries currently executing on worker threads.",
    "repro_serving_sessions": "Connected client sessions.",
    "repro_serving_draining":
        "1 while the server is draining for shutdown, else 0.",
    "repro_serving_uptime_seconds": "Seconds since the server started.",
}


def _sanitize_name(name: str) -> str:
    name = _SANITIZE.sub("_", name)
    if not name or not _NAME_OK.match(name):
        name = "_" + name
    return name


def _sanitize_label(name: str) -> str:
    name = _SANITIZE_LABEL.sub("_", name)
    if not name or not _LABEL_OK.match(name):
        name = "_" + name
    return name


def _escape_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r'\"')
    )


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value in (float("inf"), float("-inf")):
            return "+Inf" if value > 0 else "-Inf"
        return repr(round(value, 6))
    return str(value)


class _Family:
    """One metric family: HELP/TYPE header plus its samples."""

    def __init__(self, name: str, mtype: str, help_text: str | None = None):
        self.name = name
        self.type = mtype
        self.help = help_text or _HELP.get(name) or f"repro metric {name}."
        self.samples: list[tuple[str, dict, object]] = []

    def add(self, value, labels: dict | None = None, suffix: str = "") -> None:
        self.samples.append((suffix, dict(labels or {}), value))

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.type}",
        ]

        def sample_key(sample):
            suffix, labels, _ = sample
            le = labels.get("le")
            # Keep each bucket series in ascending-le order with +Inf last.
            le_key = (
                float("inf") if le in (None, "+Inf") else float(le)
            )
            return (
                suffix,
                sorted((k, v) for k, v in labels.items() if k != "le"),
                le_key,
            )

        for suffix, labels, value in sorted(self.samples, key=sample_key):
            label_text = ""
            if labels:
                pairs = ",".join(
                    f'{_sanitize_label(k)}="{_escape_value(v)}"'
                    for k, v in sorted(labels.items())
                )
                label_text = "{" + pairs + "}"
            lines.append(f"{self.name}{suffix}{label_text} {_fmt(value)}")
        return lines


class _Exposition:
    def __init__(self, prefix: str):
        self.prefix = prefix
        self.families: dict[str, _Family] = {}

    def family(self, name: str, mtype: str, help_text=None) -> _Family:
        name = _sanitize_name(f"{self.prefix}_{name}")
        fam = self.families.get(name)
        if fam is None:
            fam = self.families[name] = _Family(name, mtype, help_text)
        return fam

    def render(self) -> str:
        lines: list[str] = []
        for name in sorted(self.families):
            lines.extend(self.families[name].render())
        return "\n".join(lines) + "\n"


def _split_dotted(name: str):
    """``queries.strategy.em-parallel`` → (base, dimension, value) or None."""
    parts = name.split(".")
    if len(parts) == 3 and all(parts):
        return parts[0], parts[1], parts[2]
    return None


def _add_counter(exp: _Exposition, name: str, value) -> None:
    dotted = _split_dotted(name)
    if dotted:
        base, dimension, dim_value = dotted
        fam_base = _sanitize_name(base)
        if fam_base.endswith("_total"):
            fam_base = fam_base[: -len("_total")]
        fam = exp.family(
            f"{fam_base}_by_{_sanitize_name(dimension)}_total", "counter"
        )
        fam.add(value, labels={_sanitize_label(dimension): dim_value})
    else:
        fam_name = _sanitize_name(name)
        if not fam_name.endswith("_total"):
            fam_name += "_total"
        exp.family(fam_name, "counter").add(value)


def _add_histogram(exp: _Exposition, name: str, export: dict) -> None:
    dotted = _split_dotted(name)
    labels: dict = {}
    if dotted:
        base, dimension, dim_value = dotted
        fam_name = f"{_sanitize_name(base)}_by_{_sanitize_name(dimension)}"
        labels = {_sanitize_label(dimension): dim_value}
    else:
        fam_name = _sanitize_name(name)
    fam = exp.family(fam_name, "histogram")
    bounds = export.get("bounds", ())
    counts = export.get("counts", ())
    cumulative = 0
    for bound, count in zip(bounds, counts):
        cumulative += count
        fam.add(
            cumulative,
            labels={**labels, "le": _fmt(float(bound))},
            suffix="_bucket",
        )
    # Overflow bucket (observations past the last bound) closes at +Inf.
    total = export.get("count", sum(counts))
    fam.add(total, labels={**labels, "le": "+Inf"}, suffix="_bucket")
    fam.add(float(export.get("sum_ms", 0.0)), labels=labels, suffix="_sum")
    fam.add(total, labels=labels, suffix="_count")


def _add_collector(exp: _Exposition, collector: str, payload: dict) -> None:
    if not isinstance(payload, dict):
        return
    base = _sanitize_name(collector)
    for key, value in payload.items():
        if key == "error":
            exp.family(f"{base}_collector_error", "gauge").add(1)
            continue
        if key == "per_class" and isinstance(value, dict):
            fam = exp.family(
                f"{base}_depth_by_priority",
                "gauge",
                help_text=f"Queued entries in {collector} by priority class.",
            )
            for cls, depth in value.items():
                if isinstance(depth, (int, float)):
                    fam.add(depth, labels={"priority": str(cls)})
            continue
        if isinstance(value, dict):
            for sub, sub_value in value.items():
                if isinstance(sub_value, (int, float, bool)):
                    exp.family(
                        f"{base}_{_sanitize_name(key)}_"
                        f"{_sanitize_name(sub)}",
                        "gauge",
                    ).add(sub_value)
            continue
        if isinstance(value, (int, float, bool)):
            exp.family(f"{base}_{_sanitize_name(key)}", "gauge").add(value)
        # strings/lists (seeds, partition names) have no numeric sample


def render_prometheus(export: dict, serving: dict | None = None,
                      prefix: str = "repro") -> str:
    """Render a registry export (and optional serving stats) as Prometheus
    text format.

    Args:
        export: a :meth:`repro.metrics.MetricsRegistry.export` dict. A
            plain :meth:`snapshot` also works — its summary histograms
            (no raw buckets) then render as ``_sum``/``_count`` only.
        serving: a ``QueryServer.stats()`` dict; adds
            ``repro_serving_*`` families (queue depth per priority class,
            in-flight queries, rejections, drain state, uptime).
        prefix: family-name prefix (default ``repro``).

    Returns:
        The exposition text, newline-terminated, byte-stable for a given
        input (families sorted by name, samples by label).
    """
    exp = _Exposition(prefix)
    for name, value in (export.get("counters") or {}).items():
        _add_counter(exp, name, value)
    for name, hist in (export.get("histograms") or {}).items():
        if isinstance(hist, dict) and "counts" in hist and "bounds" in hist:
            _add_histogram(exp, name, hist)
        elif isinstance(hist, dict):
            # Summary-only snapshot: expose what we can without buckets.
            fam_name = name
            dotted = _split_dotted(name)
            labels: dict = {}
            if dotted:
                base, dimension, dim_value = dotted
                fam_name = f"{base}_by_{dimension}"
                labels = {_sanitize_label(dimension): dim_value}
            fam = exp.family(_sanitize_name(fam_name), "histogram")
            fam.add(float(hist.get("sum_ms", 0.0)), labels=labels,
                    suffix="_sum")
            fam.add(int(hist.get("count", 0)), labels=labels,
                    suffix="_count")
    slow = export.get("slow_queries")
    if slow is not None:
        exp.family("slow_queries_resident", "gauge").add(len(slow))
    reserved = {"counters", "histograms", "slow_queries"}
    for collector, payload in export.items():
        if collector in reserved:
            continue
        _add_collector(exp, collector, payload)
    if serving:
        _add_serving(exp, serving)
    return exp.render()


def _add_serving(exp: _Exposition, stats: dict) -> None:
    admission = stats.get("admission") or {}
    fam = exp.family("serving_queue_depth", "gauge")
    for cls, depth in (admission.get("per_class") or {}).items():
        fam.add(depth, labels={"priority": str(cls)})
    for key, fam_name in (
        ("admitted", "serving_admitted_total"),
        ("taken", "serving_taken_total"),
        ("rejected", "serving_rejected_total"),
    ):
        if key in admission:
            exp.family(fam_name, "counter").add(admission[key])
    if "peak_depth" in admission:
        exp.family("serving_queue_peak_depth", "gauge").add(
            admission["peak_depth"]
        )
    if "max_depth" in admission:
        exp.family("serving_queue_max_depth", "gauge").add(
            admission["max_depth"]
        )
    for key, fam_name in (
        ("active", "serving_active_queries"),
        ("sessions", "serving_sessions"),
        ("workers", "serving_workers"),
    ):
        if key in stats:
            exp.family(fam_name, "gauge").add(stats[key])
    if "draining" in stats:
        exp.family("serving_draining", "gauge").add(
            bool(stats["draining"])
        )
    if "uptime_s" in stats:
        exp.family("serving_uptime_seconds", "gauge").add(
            float(stats["uptime_s"])
        )
