"""Setuptools shim for environments without the `wheel` package.

`pip install -e .` falls back to the legacy `setup.py develop` path when
PEP 660 editable builds are unavailable; all real metadata lives in
pyproject.toml.
"""
from setuptools import setup

setup()
